"""JSON (de)serialization for trained models.

DeepEye's offline component retrains "periodically when there are more
examples available" (Section II-C) — which means trained models must
outlive the process.  This module round-trips every from-scratch model
through plain JSON-compatible dicts (no pickle: the format is stable,
diffable, and safe to load).

Entry points: :func:`save_model` / :func:`load_model` for files, and
``to_dict`` / ``from_dict`` per model type.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..errors import ReproError
from ..ml.bayes import GaussianNaiveBayes
from ..ml.lambdamart import LambdaMART
from ..ml.preprocessing import StandardScaler
from ..ml.svm import LinearSVM
from ..ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeNode

__all__ = ["to_dict", "from_dict", "save_model", "load_model"]


# ----------------------------------------------------------------------
# Tree nodes
# ----------------------------------------------------------------------
def _node_to_dict(node: Optional[TreeNode]) -> Optional[Dict]:
    if node is None:
        return None
    return {
        "feature": node.feature,
        "threshold": node.threshold,
        "value": None if node.value is None else [float(v) for v in node.value],
        "n_samples": node.n_samples,
        "impurity": node.impurity,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(payload: Optional[Dict]) -> Optional[TreeNode]:
    if payload is None:
        return None
    node = TreeNode(
        feature=payload["feature"],
        threshold=payload["threshold"],
        value=None if payload["value"] is None else np.asarray(payload["value"]),
        n_samples=payload["n_samples"],
        impurity=payload["impurity"],
    )
    node.left = _node_from_dict(payload["left"])
    node.right = _node_from_dict(payload["right"])
    return node


# ----------------------------------------------------------------------
# Per-model encoders
# ----------------------------------------------------------------------
def _tree_classifier_to_dict(model: DecisionTreeClassifier) -> Dict:
    return {
        "kind": "decision_tree_classifier",
        "params": {
            "max_depth": model.max_depth,
            "min_samples_split": model.min_samples_split,
            "min_samples_leaf": model.min_samples_leaf,
        },
        "classes": [_jsonable(c) for c in model.classes_],
        "n_features": model.n_features_,
        "root": _node_to_dict(model.root_),
    }


def _tree_classifier_from_dict(payload: Dict) -> DecisionTreeClassifier:
    model = DecisionTreeClassifier(**payload["params"])
    model.classes_ = np.asarray(payload["classes"])
    model._n_classes = len(model.classes_)
    model.n_features_ = payload["n_features"]
    model.root_ = _node_from_dict(payload["root"])
    return model


def _tree_regressor_to_dict(model: DecisionTreeRegressor) -> Dict:
    return {
        "kind": "decision_tree_regressor",
        "params": {
            "max_depth": model.max_depth,
            "min_samples_split": model.min_samples_split,
            "min_samples_leaf": model.min_samples_leaf,
        },
        "n_features": model.n_features_,
        "root": _node_to_dict(model.root_),
    }


def _tree_regressor_from_dict(payload: Dict) -> DecisionTreeRegressor:
    model = DecisionTreeRegressor(**payload["params"])
    model.n_features_ = payload["n_features"]
    model.root_ = _node_from_dict(payload["root"])
    return model


def _bayes_to_dict(model: GaussianNaiveBayes) -> Dict:
    return {
        "kind": "gaussian_naive_bayes",
        "var_smoothing": model.var_smoothing,
        "classes": [_jsonable(c) for c in model.classes_],
        "theta": model.theta_.tolist(),
        "var": model.var_.tolist(),
        "class_log_prior": model.class_log_prior_.tolist(),
    }


def _bayes_from_dict(payload: Dict) -> GaussianNaiveBayes:
    model = GaussianNaiveBayes(var_smoothing=payload["var_smoothing"])
    model.classes_ = np.asarray(payload["classes"])
    model.theta_ = np.asarray(payload["theta"])
    model.var_ = np.asarray(payload["var"])
    model.class_log_prior_ = np.asarray(payload["class_log_prior"])
    return model


def _svm_to_dict(model: LinearSVM) -> Dict:
    return {
        "kind": "linear_svm",
        "params": {
            "lam": model.lam,
            "epochs": model.epochs,
            "random_state": model.random_state,
            "fit_intercept": model.fit_intercept,
        },
        "classes": [_jsonable(c) for c in model.classes_],
        "w": model.w_.tolist(),
        "b": model.b_,
    }


def _svm_from_dict(payload: Dict) -> LinearSVM:
    model = LinearSVM(**payload["params"])
    model.classes_ = np.asarray(payload["classes"])
    model.w_ = np.asarray(payload["w"])
    model.b_ = payload["b"]
    return model


def _lambdamart_to_dict(model: LambdaMART) -> Dict:
    return {
        "kind": "lambdamart",
        "params": {
            "n_estimators": model.n_estimators,
            "learning_rate": model.learning_rate,
            "max_depth": model.max_depth,
            "min_samples_leaf": model.min_samples_leaf,
            "sigma": model.sigma,
            "ndcg_k": model.ndcg_k,
            "random_state": model.random_state,
        },
        "trees": [_tree_regressor_to_dict(t) for t in model.trees_],
    }


def _lambdamart_from_dict(payload: Dict) -> LambdaMART:
    model = LambdaMART(**payload["params"])
    model.trees_ = [_tree_regressor_from_dict(t) for t in payload["trees"]]
    return model


def _scaler_to_dict(model: StandardScaler) -> Dict:
    return {
        "kind": "standard_scaler",
        "mean": None if model.mean_ is None else model.mean_.tolist(),
        "scale": None if model.scale_ is None else model.scale_.tolist(),
    }


def _scaler_from_dict(payload: Dict) -> StandardScaler:
    model = StandardScaler()
    if payload["mean"] is not None:
        model.mean_ = np.asarray(payload["mean"])
        model.scale_ = np.asarray(payload["scale"])
    return model


def _jsonable(value):
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


_ENCODERS = {
    DecisionTreeClassifier: _tree_classifier_to_dict,
    DecisionTreeRegressor: _tree_regressor_to_dict,
    GaussianNaiveBayes: _bayes_to_dict,
    LinearSVM: _svm_to_dict,
    LambdaMART: _lambdamart_to_dict,
    StandardScaler: _scaler_to_dict,
}

_DECODERS = {
    "decision_tree_classifier": _tree_classifier_from_dict,
    "decision_tree_regressor": _tree_regressor_from_dict,
    "gaussian_naive_bayes": _bayes_from_dict,
    "linear_svm": _svm_from_dict,
    "lambdamart": _lambdamart_from_dict,
    "standard_scaler": _scaler_from_dict,
}


def to_dict(model) -> Dict:
    """Serialise a fitted model to a JSON-compatible dict."""
    encoder = _ENCODERS.get(type(model))
    if encoder is None:
        raise ReproError(
            f"cannot serialise {type(model).__name__}; supported: "
            f"{sorted(t.__name__ for t in _ENCODERS)}"
        )
    return encoder(model)


def from_dict(payload: Dict):
    """Rebuild a model from :func:`to_dict` output."""
    kind = payload.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise ReproError(f"unknown serialised model kind {kind!r}")
    return decoder(payload)


def save_model(model, path: Union[str, Path]) -> None:
    """Write a model to a JSON file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_dict(model), handle)


def load_model(path: Union[str, Path]):
    """Load a model previously written by :func:`save_model`."""
    path = Path(path)
    with path.open(encoding="utf-8") as handle:
        return from_dict(json.load(handle))
