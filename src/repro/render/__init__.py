"""Chart output: Vega-Lite spec emission and ASCII rendering."""

from .ascii import render_ascii
from .multi import multi_to_vega_lite, render_multi_ascii
from .svg import SVG_PALETTE, multi_to_svg, to_svg
from .vega import to_vega_lite, to_vega_lite_json

__all__ = [
    "render_ascii",
    "multi_to_vega_lite",
    "render_multi_ascii",
    "SVG_PALETTE",
    "multi_to_svg",
    "to_svg",
    "to_vega_lite",
    "to_vega_lite_json",
]
