"""Terminal (ASCII) chart rendering for examples and quick inspection.

Bar and pie charts render as labelled horizontal bars; line and scatter
charts as a dot grid.  Rendering is intentionally simple — it exists so
the examples can *show* what DeepEye picked without any plotting
dependency.
"""

from __future__ import annotations

from typing import List, Sequence

from ..language.ast import ChartType
from ..core.nodes import VisualizationNode

__all__ = ["render_ascii"]

_MAX_POINTS = 24


def _bar_rows(labels: Sequence[str], values: Sequence[float], width: int) -> List[str]:
    top = max((abs(v) for v in values), default=1.0) or 1.0
    label_width = min(18, max((len(l) for l in labels), default=4))
    rows = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(abs(value) / top * width)))
        rows.append(f"{label[:label_width]:>{label_width}} | {bar} {value:g}")
    return rows


def _grid_rows(xs: Sequence[float], ys: Sequence[float], width: int, height: int) -> List[str]:
    if not xs:
        return []
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    rows = ["|" + "".join(line) for line in grid]
    rows.append("+" + "-" * width)
    rows.append(f" y: [{y_lo:g}, {y_hi:g}]  x: [{x_lo:g}, {x_hi:g}]")
    return rows


def render_ascii(node: VisualizationNode, width: int = 48, height: int = 12) -> str:
    """Render one node as a small ASCII chart (downsampled past 24 bars)."""
    labels = list(
        node.data.x_labels
        or (f"{v:g}" for v in node.data.x_values)
    )
    values = list(node.data.y_values)
    header = node.describe()

    if node.chart in (ChartType.BAR, ChartType.PIE):
        if len(values) > _MAX_POINTS:
            labels = labels[:_MAX_POINTS] + [f"... (+{len(values) - _MAX_POINTS})"]
            values = values[:_MAX_POINTS] + [0.0]
        body = _bar_rows(labels, values, width)
        if node.chart is ChartType.PIE:
            total = sum(abs(v) for v in node.data.y_values) or 1.0
            body.append(f" (pie: shares of total {total:g})")
    else:
        body = _grid_rows(list(node.data.x_values), values, width, height)
    return "\n".join([header] + body)
