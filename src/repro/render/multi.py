"""Rendering for multi-series charts (the Section II-B extensions)."""

from __future__ import annotations

from typing import Dict, List

from ..core.multicolumn import MultiSeriesData
from ..language.ast import ChartType

__all__ = ["multi_to_vega_lite", "render_multi_ascii"]

_MARKS = {
    ChartType.BAR: "bar",
    ChartType.LINE: "line",
    ChartType.PIE: "arc",
    ChartType.SCATTER: "point",
}

_SERIES_GLYPHS = "*o+x#@%&"


def multi_to_vega_lite(data: MultiSeriesData, title: str = "") -> Dict:
    """A Vega-Lite spec with a color-encoded ``series`` field.

    Bars render stacked (the paper's Figure 1(b)); lines/points get one
    colored series each (Figure 1(a)).
    """
    values = []
    for name, ys in sorted(data.series.items()):
        for label, y in zip(data.x_labels, ys):
            values.append({"x": label, "y": y, "series": name})
    spec: Dict[str, object] = {
        "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
        "title": title or data.describe(),
        "data": {"values": values},
        "mark": _MARKS[data.chart],
        "encoding": {
            "x": {"field": "x", "type": "nominal", "sort": None,
                  "title": data.x_name},
            "y": {"field": "y", "type": "quantitative",
                  "stack": "zero" if data.chart is ChartType.BAR else None},
            "color": {"field": "series", "type": "nominal"},
        },
    }
    return spec


def render_multi_ascii(data: MultiSeriesData, width: int = 48, height: int = 12) -> str:
    """A dot-grid rendering with one glyph per series, plus a legend."""
    lines: List[str] = [data.describe()]
    names = sorted(data.series)
    all_values = [v for ys in data.series.values() for v in ys]
    if not all_values or data.num_points < 2:
        return "\n".join(lines + ["(empty)"])
    y_lo, y_hi = min(all_values), max(all_values)
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for series_idx, name in enumerate(names):
        glyph = _SERIES_GLYPHS[series_idx % len(_SERIES_GLYPHS)]
        ys = data.series[name]
        for point_idx, y in enumerate(ys):
            col = int(point_idx / max(1, data.num_points - 1) * (width - 1))
            row = int((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    legend = "  ".join(
        f"{_SERIES_GLYPHS[i % len(_SERIES_GLYPHS)]}={name}"
        for i, name in enumerate(names)
    )
    lines.append(f" legend: {legend}")
    lines.append(f" y: [{y_lo:g}, {y_hi:g}]")
    return "\n".join(lines)
