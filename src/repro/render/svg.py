"""Standalone SVG rendering for visualization nodes.

Produces self-contained SVG documents (no plotting library, no
JavaScript) for all four chart types and for multi-series data — the
output a DeepEye front end would actually display.  Geometry is kept
deliberately simple: one plot area, linear scales, categorical bands.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.multicolumn import MultiSeriesData
from ..core.nodes import VisualizationNode
from ..language.ast import ChartType

__all__ = ["to_svg", "multi_to_svg", "SVG_PALETTE"]

#: Categorical palette (color-blind-safe Okabe-Ito).
SVG_PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#999999",
)

_WIDTH, _HEIGHT = 560, 360
_MARGIN = {"left": 64, "right": 16, "top": 40, "bottom": 56}


def _escape(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _document(body: List[str], title: str) -> str:
    header = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="sans-serif" font-size="11">'
    )
    title_el = (
        f'<text x="{_WIDTH / 2}" y="20" text-anchor="middle" '
        f'font-size="13" font-weight="bold">{_escape(title)}</text>'
    )
    return "\n".join([header, title_el] + body + ["</svg>"])


def _plot_area() -> Tuple[float, float, float, float]:
    x0 = _MARGIN["left"]
    y0 = _MARGIN["top"]
    x1 = _WIDTH - _MARGIN["right"]
    y1 = _HEIGHT - _MARGIN["bottom"]
    return x0, y0, x1, y1


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        return [lo]
    raw_step = (hi - lo) / max(n - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for factor in (1, 2, 2.5, 5, 10):
        step = factor * magnitude
        if step >= raw_step:
            break
    start = math.floor(lo / step) * step
    ticks = []
    value = start
    while value <= hi + step * 0.5:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _y_scale(values: Sequence[float]) -> Tuple[float, float]:
    lo = min(0.0, min(values))
    hi = max(0.0, max(values))
    if lo == hi:
        hi = lo + 1.0
    return lo, hi


def _axes(
    y_lo: float, y_hi: float, x_label: str, y_label: str
) -> Tuple[List[str], callable]:
    """Axis lines, y grid/ticks, labels; returns (elements, y-mapper)."""
    x0, y0, x1, y1 = _plot_area()

    def map_y(v: float) -> float:
        return y1 - (v - y_lo) / (y_hi - y_lo) * (y1 - y0)

    elements = [
        f'<line x1="{x0}" y1="{y1}" x2="{x1}" y2="{y1}" stroke="#333"/>',
        f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="#333"/>',
    ]
    for tick in _nice_ticks(y_lo, y_hi):
        if not y_lo <= tick <= y_hi:
            continue
        y = map_y(tick)
        elements.append(
            f'<line x1="{x0}" y1="{y:.1f}" x2="{x1}" y2="{y:.1f}" '
            f'stroke="#ddd" stroke-dasharray="2,3"/>'
        )
        elements.append(
            f'<text x="{x0 - 6}" y="{y + 3:.1f}" text-anchor="end">'
            f"{tick:g}</text>"
        )
    elements.append(
        f'<text x="{(x0 + x1) / 2}" y="{_HEIGHT - 8}" text-anchor="middle">'
        f"{_escape(x_label)}</text>"
    )
    elements.append(
        f'<text x="14" y="{(y0 + y1) / 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {(y0 + y1) / 2})">{_escape(y_label)}</text>'
    )
    return elements, map_y


def _x_tick_labels(labels: Sequence[str], positions: Sequence[float]) -> List[str]:
    _, _, _, y1 = _plot_area()
    step = max(1, len(labels) // 12)  # at most ~12 printed ticks
    elements = []
    for i in range(0, len(labels), step):
        elements.append(
            f'<text x="{positions[i]:.1f}" y="{y1 + 14}" text-anchor="middle">'
            f"{_escape(str(labels[i])[:10])}</text>"
        )
    return elements


def _bar_chart(node: VisualizationNode) -> List[str]:
    x0, y0, x1, y1 = _plot_area()
    values = node.data.y_values
    labels = node.data.x_labels or tuple(f"{v:g}" for v in node.data.x_values)
    y_lo, y_hi = _y_scale(values)
    elements, map_y = _axes(y_lo, y_hi, node.x_name, _y_title(node))
    n = len(values)
    band = (x1 - x0) / max(n, 1)
    bar_width = band * 0.7
    centers = []
    for i, value in enumerate(values):
        cx = x0 + band * (i + 0.5)
        centers.append(cx)
        top = map_y(max(value, 0.0))
        bottom = map_y(min(value, 0.0))
        elements.append(
            f'<rect x="{cx - bar_width / 2:.1f}" y="{top:.1f}" '
            f'width="{bar_width:.1f}" height="{max(bottom - top, 0.5):.1f}" '
            f'fill="{SVG_PALETTE[0]}"/>'
        )
    elements.extend(_x_tick_labels(labels, centers))
    return elements


def _line_or_scatter(node: VisualizationNode, as_line: bool) -> List[str]:
    x0, y0, x1, y1 = _plot_area()
    values = node.data.y_values
    xs = node.data.x_values
    labels = node.data.x_labels or tuple(f"{v:g}" for v in xs)
    y_lo, y_hi = _y_scale(values)
    elements, map_y = _axes(y_lo, y_hi, node.x_name, _y_title(node))

    x_min, x_max = min(xs), max(xs)
    span = (x_max - x_min) or 1.0
    positions = [x0 + (v - x_min) / span * (x1 - x0) for v in xs]

    if as_line:
        points = " ".join(
            f"{px:.1f},{map_y(v):.1f}" for px, v in zip(positions, values)
        )
        elements.append(
            f'<polyline points="{points}" fill="none" '
            f'stroke="{SVG_PALETTE[0]}" stroke-width="2"/>'
        )
    for px, v in zip(positions, values):
        elements.append(
            f'<circle cx="{px:.1f}" cy="{map_y(v):.1f}" r="2.5" '
            f'fill="{SVG_PALETTE[0 if as_line else 1]}"/>'
        )
    elements.extend(_x_tick_labels(labels, positions))
    return elements


def _pie_chart(node: VisualizationNode) -> List[str]:
    values = [max(v, 0.0) for v in node.data.y_values]
    labels = node.data.x_labels
    total = sum(values) or 1.0
    cx, cy = _WIDTH * 0.38, (_HEIGHT + _MARGIN["top"]) / 2
    radius = min(_WIDTH, _HEIGHT) * 0.3
    elements = []
    angle = -math.pi / 2
    for i, (value, label) in enumerate(zip(values, labels)):
        fraction = value / total
        end = angle + fraction * 2 * math.pi
        large = 1 if fraction > 0.5 else 0
        x_start = cx + radius * math.cos(angle)
        y_start = cy + radius * math.sin(angle)
        x_end = cx + radius * math.cos(end)
        y_end = cy + radius * math.sin(end)
        color = SVG_PALETTE[i % len(SVG_PALETTE)]
        if fraction >= 1.0 - 1e-9:
            elements.append(
                f'<circle cx="{cx}" cy="{cy}" r="{radius}" fill="{color}"/>'
            )
        elif fraction > 0:
            elements.append(
                f'<path d="M{cx:.1f},{cy:.1f} L{x_start:.1f},{y_start:.1f} '
                f'A{radius:.1f},{radius:.1f} 0 {large} 1 '
                f'{x_end:.1f},{y_end:.1f} Z" fill="{color}" stroke="white"/>'
            )
        # Legend entry.
        ly = _MARGIN["top"] + 16 * i
        elements.append(
            f'<rect x="{_WIDTH * 0.7}" y="{ly}" width="10" height="10" '
            f'fill="{color}"/>'
        )
        elements.append(
            f'<text x="{_WIDTH * 0.7 + 14}" y="{ly + 9}">'
            f"{_escape(str(label)[:16])} ({100 * fraction:.0f}%)</text>"
        )
        angle = end
    return elements


def _y_title(node: VisualizationNode) -> str:
    if node.query.aggregate:
        return f"{node.query.aggregate.value}({node.y_name})"
    return node.y_name


def to_svg(node: VisualizationNode, title: Optional[str] = None) -> str:
    """Render one visualization node as a standalone SVG document."""
    if node.chart is ChartType.PIE:
        body = _pie_chart(node)
    elif node.chart is ChartType.BAR:
        body = _bar_chart(node)
    else:
        body = _line_or_scatter(node, as_line=node.chart is ChartType.LINE)
    return _document(body, title or node.describe())


def multi_to_svg(data: MultiSeriesData, title: Optional[str] = None) -> str:
    """Render multi-series data: one colored polyline/point set per series."""
    x0, y0, x1, y1 = _plot_area()
    all_values = [v for ys in data.series.values() for v in ys]
    if not all_values:
        return _document([], title or data.describe())
    y_lo, y_hi = _y_scale(all_values)
    elements, map_y = _axes(y_lo, y_hi, data.x_name, "value")

    n = data.num_points
    positions = [
        x0 + (i / max(n - 1, 1)) * (x1 - x0) for i in range(n)
    ]
    for series_idx, (name, ys) in enumerate(sorted(data.series.items())):
        color = SVG_PALETTE[series_idx % len(SVG_PALETTE)]
        points = " ".join(
            f"{px:.1f},{map_y(v):.1f}" for px, v in zip(positions, ys)
        )
        if data.chart is ChartType.LINE:
            elements.append(
                f'<polyline points="{points}" fill="none" stroke="{color}" '
                f'stroke-width="2"/>'
            )
        else:
            for px, v in zip(positions, ys):
                elements.append(
                    f'<circle cx="{px:.1f}" cy="{map_y(v):.1f}" r="2.5" '
                    f'fill="{color}"/>'
                )
        ly = _MARGIN["top"] + 14 * series_idx
        elements.append(
            f'<rect x="{x1 - 110}" y="{ly}" width="10" height="10" fill="{color}"/>'
        )
        elements.append(
            f'<text x="{x1 - 96}" y="{ly + 9}">{_escape(str(name)[:14])}</text>'
        )
    elements.extend(_x_tick_labels(data.x_labels, positions))
    return _document(elements, title or data.describe())
