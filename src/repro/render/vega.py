"""Vega-Lite spec emission for visualization nodes.

The paper's related work positions Vega as a JSON visualization grammar;
emitting Vega-Lite specs makes DeepEye's output directly consumable by
standard front ends.  Only the mark/encoding subset needed by the four
chart types is produced — data values are inlined.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..language.ast import ChartType
from ..core.nodes import VisualizationNode

__all__ = ["to_vega_lite", "to_vega_lite_json"]

_MARKS = {
    ChartType.BAR: "bar",
    ChartType.LINE: "line",
    ChartType.PIE: "arc",
    ChartType.SCATTER: "point",
}


def _data_values(node: VisualizationNode) -> List[Dict[str, object]]:
    labels = node.data.x_labels or tuple(
        f"{v:g}" for v in node.data.x_values
    )
    return [
        {"x": label, "y": y}
        for label, y in zip(labels, node.data.y_values)
    ]


def to_vega_lite(node: VisualizationNode, title: Optional[str] = None) -> Dict:
    """A Vega-Lite v5 spec dict for one visualization node."""
    y_title = (
        f"{node.query.aggregate.value}({node.y_name})"
        if node.query.aggregate
        else node.y_name
    )
    spec: Dict[str, object] = {
        "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
        "title": title or node.describe(),
        "data": {"values": _data_values(node)},
        "mark": _MARKS[node.chart],
    }
    if node.chart is ChartType.PIE:
        spec["encoding"] = {
            "theta": {"field": "y", "type": "quantitative", "title": y_title},
            "color": {"field": "x", "type": "nominal", "title": node.x_name},
        }
        return spec
    x_type = "nominal" if node.data.x_is_discrete else "quantitative"
    # Preserve the query's ordering on a discrete axis.
    x_encoding: Dict[str, object] = {
        "field": "x",
        "type": x_type,
        "title": node.x_name,
    }
    if node.data.x_is_discrete:
        x_encoding["sort"] = None
    spec["encoding"] = {
        "x": x_encoding,
        "y": {"field": "y", "type": "quantitative", "title": y_title},
    }
    return spec


def to_vega_lite_json(node: VisualizationNode, indent: int = 2) -> str:
    """The spec serialised as JSON text."""
    return json.dumps(to_vega_lite(node), indent=indent)
