"""Shared fixtures for the test suite."""

from __future__ import annotations

import datetime as dt
import random

import numpy as np
import pytest

from repro.dataset import Table


@pytest.fixture
def flights_table() -> Table:
    """A small deterministic flight-delay table (the paper's Table I)."""
    rng = random.Random(7)
    n = 240
    scheduled = [
        dt.datetime(2015, 1 + (i // 20) % 12, 1 + i % 28, i % 24, (i * 7) % 60)
        for i in range(n)
    ]
    carriers = [rng.choice(["UA", "AA", "MQ", "OO"]) for _ in range(n)]
    dep = [rng.gauss(10, 6) for _ in range(n)]
    arr = [d * 0.85 + rng.gauss(0, 2) for d in dep]
    return Table.from_dict(
        "flights",
        {
            "scheduled": scheduled,
            "carrier": carriers,
            "destination": [
                rng.choice(["NYC", "LAX", "SFO", "ATL", "ORD"]) for _ in range(n)
            ],
            "departure_delay": dep,
            "arrival_delay": arr,
            "passengers": [rng.randint(60, 300) for _ in range(n)],
        },
    )


@pytest.fixture
def tiny_table() -> Table:
    """A 6-row table with one column of each type."""
    return Table.from_dict(
        "tiny",
        {
            "city": ["a", "b", "a", "c", "b", "a"],
            "value": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            "when": [dt.datetime(2020, 1, 1 + i) for i in range(6)],
        },
    )


@pytest.fixture(scope="session")
def experiment_setup():
    """A miniature trained ExperimentSetup shared by slow integration
    tests (session-scoped: building it costs tens of seconds)."""
    from repro.experiments import ExperimentSetup

    return ExperimentSetup.build(
        train_scale=0.04,
        test_scale=0.01,
        max_nodes_per_table=80,
        ltr_estimators=15,
    )
