"""API-quality gates: docstrings, exports, and error hygiene.

These tests keep the public surface documented and consistent — the
kind of check a maintained open-source project enforces in CI.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.dataset",
    "repro.language",
    "repro.ml",
    "repro.core",
    "repro.corpus",
    "repro.indexes",
    "repro.engine",
    "repro.render",
    "repro.persistence",
    "repro.experiments",
]


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in dir(module) if not n.startswith("_")]
    for name in names:
        member = getattr(module, name, None)
        if member is not None and (
            inspect.isclass(member) or inspect.isfunction(member)
        ):
            yield name, member


class TestDocstrings:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_docstrings(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} lacks a module docstring"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_public_members_documented(self, package):
        module = importlib.import_module(package)
        undocumented = [
            name
            for name, member in _public_members(module)
            if not inspect.getdoc(member)
        ]
        assert not undocumented, f"{package}: undocumented {undocumented}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_public_methods_documented(self, package):
        module = importlib.import_module(package)
        missing = []
        for name, member in _public_members(module):
            if not inspect.isclass(member):
                continue
            for method_name, method in inspect.getmembers(member, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != member.__name__:
                    continue  # inherited elsewhere
                if not inspect.getdoc(method):
                    missing.append(f"{name}.{method_name}")
        assert not missing, f"{package}: undocumented methods {missing}"


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{package}.__all__ lists missing {name}"

    def test_every_submodule_importable(self):
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            importlib.import_module(info.name)

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        base = errors.ReproError
        for name in dir(errors):
            member = getattr(errors, name)
            if inspect.isclass(member) and issubclass(member, Exception):
                if member in (Exception,):
                    continue
                assert issubclass(member, base) or member is base, name

    def test_catching_base_covers_subsystem_errors(self):
        from repro.errors import ParseError, ReproError
        from repro.language import parse_query

        with pytest.raises(ReproError):
            parse_query("VISUALIZE donut")
