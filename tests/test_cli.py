"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.corpus import make_table
from repro.dataset import write_csv


@pytest.fixture
def flights_csv(tmp_path):
    table = make_table("FlyDelay", scale=0.005)
    path = tmp_path / "flights.csv"
    write_csv(table, path)
    return str(path)


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestVisualize:
    def test_ascii_output(self, flights_csv):
        code, text = _run(["visualize", flights_csv, "--k", "3"])
        assert code == 0
        assert "candidates" in text
        assert text.count("--- #") == 3

    def test_list_output(self, flights_csv):
        code, text = _run(["visualize", flights_csv, "--k", "2", "--format", "list"])
        assert code == 0
        assert text.count("\n1. ") + text.count("\n2. ") >= 1

    def test_vega_output_is_json(self, flights_csv):
        code, text = _run(["visualize", flights_csv, "--k", "1", "--format", "vega"])
        assert code == 0
        body = text.split("\n", 1)[1]
        spec = json.loads(body)
        assert spec["$schema"].startswith("https://vega.github.io")

    def test_missing_file_is_an_error(self):
        code, _ = _run(["visualize", "/nonexistent.csv"])
        assert code == 2


class TestSearch:
    def test_finds_matching_chart(self, flights_csv):
        code, text = _run(
            ["search", flights_csv, "average delay by hour", "--format", "list"]
        )
        assert code == 0
        assert "AVG" in text
        assert "score=" in text

    def test_no_match_exit_code(self, flights_csv):
        code, text = _run(["search", flights_csv, "zzzz"])
        assert code == 1
        assert "no charts match" in text


class TestQuery:
    def test_runs_inline_query(self, flights_csv):
        query = (
            "VISUALIZE bar\n"
            "SELECT carrier, CNT(carrier)\n"
            "FROM flights\n"
            "GROUP BY carrier"
        )
        code, text = _run(["query", flights_csv, "--text", query])
        assert code == 0
        assert "bar" in text

    def test_bad_query_is_an_error(self, flights_csv):
        code, _ = _run(["query", flights_csv, "--text", "VISUALIZE donut"])
        assert code == 2


class TestDatasetsAndGenerate:
    def test_datasets_lists_corpus(self):
        code, text = _run(["datasets"])
        assert code == 0
        assert "FlyDelay" in text
        assert "Monthly Sales" in text

    def test_generate_writes_csv(self, tmp_path):
        out_path = tmp_path / "gen.csv"
        code, text = _run(
            ["generate", "Monthly Sales", str(out_path), "--scale", "0.1"]
        )
        assert code == 0
        assert out_path.exists()
        header = out_path.read_text().splitlines()[0]
        assert "revenue_usd" in header

    def test_generate_unknown_dataset(self, tmp_path):
        code, _ = _run(["generate", "Nope", str(tmp_path / "x.csv")])
        assert code == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["visualize", "x.csv"])
        assert args.k == 5
        assert args.format == "ascii"
        assert args.enumeration == "rules"


class TestObservabilityFlags:
    def test_no_cache_prints_explicit_na(self, flights_csv):
        code, text = _run(
            ["visualize", flights_csv, "--k", "2", "--format", "list",
             "--no-cache"]
        )
        assert code == 0
        assert "# cache: n/a (caching disabled)" in text
        assert "# phases:" in text

    def test_cache_line_shows_levels_when_enabled(self, flights_csv):
        code, text = _run(
            ["visualize", flights_csv, "--k", "2", "--format", "list"]
        )
        assert code == 0
        assert "results=" in text and "transforms=" in text

    def test_provenance_flag_appends_report(self, flights_csv):
        code, text = _run(
            ["visualize", flights_csv, "--k", "2", "--format", "list",
             "--provenance"]
        )
        assert code == 0
        assert "# provenance" in text
        assert "#1:" in text and "factors:" in text

    def test_events_flag_writes_jsonl(self, flights_csv, tmp_path):
        log_path = tmp_path / "events.jsonl"
        code, text = _run(
            ["visualize", flights_csv, "--k", "2", "--format", "list",
             "--events", str(log_path)]
        )
        assert code == 0
        assert log_path.exists()
        assert "# wrote" in text and "events" in text
        from repro.obs import read_event_log

        events = read_event_log(log_path)
        assert any(e["kind"] == "request" for e in events)
        assert any(e["kind"] == "rank" for e in events)


class TestObsCommand:
    def test_report_renders_tables(self, flights_csv, tmp_path):
        log_path = tmp_path / "events.jsonl"
        _run(["visualize", flights_csv, "--k", "2", "--format", "list",
              "--events", str(log_path)])
        code, text = _run(["obs", "report", str(log_path)])
        assert code == 0
        assert "per-phase:" in text
        assert "per-table:" in text

    def test_report_json(self, flights_csv, tmp_path):
        log_path = tmp_path / "events.jsonl"
        _run(["visualize", flights_csv, "--k", "2", "--format", "list",
              "--events", str(log_path)])
        code, text = _run(["obs", "report", str(log_path), "--json"])
        assert code == 0
        summary = json.loads(text)
        assert summary["requests"] == 1
        flights = summary["tables"]["flights"]
        assert flights["considered"] == flights["emitted"] + flights["pruned"]

    def test_snapshot_then_diff_is_clean(self, tmp_path):
        golden = tmp_path / "golden.json"
        code, text = _run(
            ["obs", "snapshot", "--out", str(golden), "--k", "2",
             "--scale", "0.02", "--tables", "Happiness Rank"]
        )
        assert code == 0
        snapshot = json.loads(golden.read_text())
        assert snapshot["tables"][0]["chart_ids"]
        report_path = tmp_path / "drift.json"
        code, text = _run(
            ["obs", "diff", str(golden), "--out", str(report_path)]
        )
        assert code == 0
        assert "drift: none" in text
        report = json.loads(report_path.read_text())
        assert report["clean"] is True

    def test_diff_fails_on_doctored_snapshot(self, tmp_path):
        golden = tmp_path / "golden.json"
        _run(["obs", "snapshot", "--out", str(golden), "--k", "2",
              "--scale", "0.02", "--tables", "Happiness Rank"])
        snapshot = json.loads(golden.read_text())
        snapshot["tables"][0]["chart_ids"].reverse()
        snapshot["tables"][0]["scores"].reverse()
        golden.write_text(json.dumps(snapshot))
        code, text = _run(["obs", "diff", str(golden)])
        assert code == 1
        assert "reordered" in text
