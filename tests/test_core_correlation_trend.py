"""Unit tests for correlation families and trend detection."""

import numpy as np
import pytest

from repro.core import correlation, correlation_strength, fit_trend, pearson, trend


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_returns_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_short_input(self):
        assert pearson([1], [2]) == 0.0


class TestCorrelationFamilies:
    def test_linear_family_wins_on_linear_data(self):
        x = np.linspace(1, 10, 50)
        result = correlation(x, 3 * x + 2)
        assert result.family == "linear"
        assert result.value == pytest.approx(1.0)

    def test_power_family_detected(self):
        x = np.linspace(1, 10, 80)
        y = x**2.5
        result = correlation(x, y)
        assert result.per_family["power"] == pytest.approx(1.0)
        assert result.strength == pytest.approx(1.0)

    def test_log_family_detected(self):
        x = np.linspace(1, 100, 80)
        y = 5 * np.log(x) + 1
        result = correlation(x, y)
        assert result.per_family["log"] == pytest.approx(1.0)

    def test_polynomial_family_catches_parabola(self):
        x = np.linspace(-3, 3, 60)
        y = x**2
        result = correlation(x, y)
        # Plain Pearson is ~0 on a symmetric parabola; the polynomial
        # family must rescue it.
        assert abs(result.per_family["linear"]) < 0.2
        assert result.per_family["polynomial"] == pytest.approx(1.0)

    def test_family_restriction(self):
        x = np.linspace(-3, 3, 60)
        result = correlation(x, x**2, families=("linear",))
        assert result.strength < 0.2

    def test_noise_is_weak(self):
        rng = np.random.default_rng(0)
        assert correlation_strength(rng.normal(size=200), rng.normal(size=200)) < 0.3

    def test_non_finite_dropped(self):
        x = [1.0, 2.0, np.nan, 4.0, 5.0]
        y = [1.0, 2.0, 3.0, 4.0, np.inf]
        result = correlation(x, y)
        assert np.isfinite(result.value)

    def test_too_few_points(self):
        assert correlation([1, 2], [1, 2]).value == 0.0


class TestTrend:
    def test_linear_trend_detected(self):
        y = np.linspace(0, 10, 30)
        result = fit_trend(y)
        assert result.has_trend
        assert result.family == "linear"

    def test_exponential_trend_detected(self):
        y = np.exp(np.linspace(0, 3, 30))
        result = fit_trend(y)
        assert result.has_trend
        assert result.per_family["exponential"] == pytest.approx(1.0, abs=1e-6)

    def test_power_trend_detected(self):
        t = np.arange(1, 40, dtype=float)
        result = fit_trend(t**1.7)
        assert result.has_trend

    def test_noise_has_no_trend(self):
        rng = np.random.default_rng(1)
        assert trend(rng.normal(size=60)) == 0.0

    def test_seasonal_fluctuation_has_no_trend(self):
        # The paper's Figure 1(d): daily delays fluctuate with no trend.
        t = np.arange(200)
        rng = np.random.default_rng(2)
        y = 10 + 5 * rng.normal(size=200)
        assert trend(y) == 0.0

    def test_constant_series_counts_as_trend(self):
        assert trend(np.full(20, 3.0)) == 1.0

    def test_short_series(self):
        result = fit_trend([1.0, 2.0])
        assert not result.has_trend

    def test_threshold_configurable(self):
        rng = np.random.default_rng(3)
        y = np.linspace(0, 5, 40) + rng.normal(0, 1.2, 40)
        strict = fit_trend(y, r2_threshold=0.99)
        lax = fit_trend(y, r2_threshold=0.3)
        assert not strict.has_trend
        assert lax.has_trend
