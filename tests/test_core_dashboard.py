"""Tests for diversified dashboard composition."""

import pytest

from repro.core import compose_dashboard, diversified_top_k, enumerate_rule_based
from repro.core.dashboard import similarity
from repro.core.partial_order import matching_quality_raw


@pytest.fixture(scope="module")
def table():
    from repro.corpus import make_table

    return make_table("FlyDelay", scale=0.01)


@pytest.fixture(scope="module")
def valid_nodes(table):
    return [
        n for n in enumerate_rule_based(table) if matching_quality_raw(n) > 0
    ]


class TestSimilarity:
    def test_self_similarity_is_one(self, valid_nodes):
        node = valid_nodes[0]
        assert similarity(node, node) == pytest.approx(1.0)

    def test_disjoint_columns_low_similarity(self, valid_nodes):
        pairs = [
            (a, b)
            for a in valid_nodes
            for b in valid_nodes
            if not set(a.columns) & set(b.columns)
        ]
        if not pairs:
            pytest.skip("no disjoint pairs at this scale")
        a, b = pairs[0]
        assert similarity(a, b) <= 0.4

    def test_symmetry(self, valid_nodes):
        a, b = valid_nodes[0], valid_nodes[-1]
        assert similarity(a, b) == pytest.approx(similarity(b, a))


class TestDiversifiedTopK:
    def test_zero_diversity_is_plain_top_k(self, valid_nodes):
        relevance = [1.0 - i / len(valid_nodes) for i in range(len(valid_nodes))]
        items = diversified_top_k(valid_nodes, relevance, k=4, diversity=0.0)
        assert [i.chart for i in items] == valid_nodes[:4]

    def test_diversity_reduces_redundancy(self, valid_nodes):
        relevance = [1.0 - i / len(valid_nodes) for i in range(len(valid_nodes))]

        def mean_pairwise(items):
            charts = [i.chart for i in items]
            pairs = [
                similarity(a, b)
                for x, a in enumerate(charts)
                for b in charts[x + 1 :]
            ]
            return sum(pairs) / len(pairs) if pairs else 0.0

        plain = diversified_top_k(valid_nodes, relevance, 5, diversity=0.0)
        diverse = diversified_top_k(valid_nodes, relevance, 5, diversity=0.7)
        assert mean_pairwise(diverse) <= mean_pairwise(plain) + 1e-9

    def test_k_larger_than_pool(self, valid_nodes):
        relevance = [0.5] * len(valid_nodes)
        items = diversified_top_k(valid_nodes, relevance, k=10_000)
        assert len(items) == len(valid_nodes)

    def test_validation(self, valid_nodes):
        with pytest.raises(ValueError):
            diversified_top_k(valid_nodes, [0.5] * len(valid_nodes), 3, diversity=2.0)
        with pytest.raises(ValueError):
            diversified_top_k(valid_nodes, [0.5], 3)


class TestComposeDashboard:
    def test_dashboard_has_k_panels(self, table):
        dashboard = compose_dashboard(table, k=5)
        assert len(dashboard) == 5
        assert dashboard.table_name == table.name

    def test_panels_are_distinct(self, table):
        dashboard = compose_dashboard(table, k=6)
        described = [item.describe() for item in dashboard.items]
        assert len(set(described)) == len(described)

    def test_includes_multicolumn_panels_when_available(self, table):
        dashboard = compose_dashboard(table, k=8, diversity=0.6)
        # FlyDelay has grouped/multi-series candidates; a diverse board
        # should surface at least one.
        assert any(item.is_multi for item in dashboard.items)

    def test_single_chart_only_mode(self, table):
        dashboard = compose_dashboard(table, k=4, include_multicolumn=False)
        assert all(not item.is_multi for item in dashboard.items)

    def test_describe_readable(self, table):
        text = compose_dashboard(table, k=3).describe()
        assert "Dashboard for" in text
        assert "relevance" in text

    def test_first_panel_is_most_relevant(self, table):
        dashboard = compose_dashboard(table, k=4, diversity=0.3)
        assert dashboard.items[0].relevance == max(
            item.relevance for item in dashboard.items
        )
