"""Unit tests for candidate enumeration (search space, modes, caching)."""

import pytest

from repro.core import (
    EnumerationConfig,
    EnumerationContext,
    enumerate_candidates,
    enumerate_exhaustive,
    enumerate_rule_based,
    make_node,
    multi_column_space,
    one_column_space,
    two_column_space,
)
from repro.core.rules import complies
from repro.language import AggregateOp, ChartType


class TestSearchSpaceFormulas:
    def test_two_column_space(self):
        # Section II-B: 528 * m * (m - 1).
        assert two_column_space(2) == 1056
        assert two_column_space(6) == 528 * 30

    def test_one_column_space(self):
        assert one_column_space(3) == 264 * 3

    def test_multi_column_space(self):
        assert multi_column_space(2) == 704 * 8


class TestExhaustiveEnumeration:
    def test_all_four_chart_types_present(self, flights_table):
        nodes = enumerate_exhaustive(flights_table, EnumerationConfig(orderings="none"))
        assert {n.chart for n in nodes} == set(ChartType)

    def test_orderings_multiply_candidates(self, flights_table):
        config_none = EnumerationConfig(orderings="none")
        config_all = EnumerationConfig(orderings="all")
        n_none = len(enumerate_exhaustive(flights_table, config_none))
        n_all = len(enumerate_exhaustive(flights_table, config_all))
        assert n_all == 3 * n_none

    def test_one_column_candidates_use_count(self, flights_table):
        nodes = enumerate_exhaustive(flights_table, EnumerationConfig(orderings="none"))
        single = [n for n in nodes if n.query.x == n.query.y]
        assert single
        assert all(n.query.aggregate is AggregateOp.CNT for n in single)

    def test_exclude_one_column(self, flights_table):
        config = EnumerationConfig(orderings="none", include_one_column=False)
        nodes = enumerate_exhaustive(flights_table, config)
        assert all(n.query.x != n.query.y for n in nodes)

    def test_nodes_unique(self, flights_table):
        nodes = enumerate_exhaustive(flights_table, EnumerationConfig(orderings="none"))
        keys = [n.key() for n in nodes]
        assert len(keys) == len(set(keys))


class TestRuleBasedEnumeration:
    def test_strict_subset_of_exhaustive_plus_canonical_order(self, flights_table):
        rules = enumerate_rule_based(flights_table)
        exhaustive = enumerate_exhaustive(flights_table)
        assert len(rules) < len(exhaustive)

    def test_all_rule_candidates_comply(self, flights_table):
        for node in enumerate_rule_based(flights_table):
            assert complies(node.query, flights_table, correlated=True), (
                node.describe()
            )

    def test_no_degenerate_single_bucket_charts(self, flights_table):
        for node in enumerate_rule_based(flights_table):
            assert node.data.transformed_rows >= 2

    def test_correlated_pair_yields_raw_scatter(self, flights_table):
        nodes = enumerate_rule_based(flights_table)
        raw_scatters = [
            n for n in nodes
            if n.chart is ChartType.SCATTER and n.query.transform is None
        ]
        assert any(
            {n.query.x, n.query.y} == {"departure_delay", "arrival_delay"}
            for n in raw_scatters
        )

    def test_no_duplicate_count_charts(self, flights_table):
        nodes = enumerate_rule_based(flights_table)
        cnt_pairs = [
            n for n in nodes
            if n.query.aggregate is AggregateOp.CNT and n.query.x != n.query.y
        ]
        assert cnt_pairs == []

    def test_mode_dispatch(self, flights_table):
        assert len(enumerate_candidates(flights_table, "R")) == len(
            enumerate_candidates(flights_table, "rules")
        )
        with pytest.raises(ValueError):
            enumerate_candidates(flights_table, "bogus")


class TestContextCaching:
    def test_cached_node_matches_direct_execution(self, flights_table):
        nodes = enumerate_rule_based(flights_table)
        sample = [n for n in nodes if n.query.transform is not None][:10]
        for node in sample:
            direct = make_node(flights_table, node.query)
            assert direct.data.x_labels == node.data.x_labels
            assert direct.data.y_values == pytest.approx(node.data.y_values)
            assert direct.features.transformed_rows == node.features.transformed_rows

    def test_context_reuse_across_modes(self, flights_table):
        ctx = EnumerationContext(flights_table)
        enumerate_rule_based(flights_table, context=ctx)
        transforms_after_rules = len(ctx._transforms)
        enumerate_exhaustive(flights_table, context=ctx)
        # Exhaustive reuses every transform the rules mode computed.
        assert len(ctx._transforms) >= transforms_after_rules

    def test_raw_continuous_data_elides_labels(self, flights_table):
        ctx = EnumerationContext(flights_table)
        data = ctx._base_data("departure_delay", "arrival_delay", None, None)
        assert data.x_labels == ()
        assert data.distinct_x > 0  # falls back to x_values
