"""Tests for chart explanations and table profiling."""

import pytest

from repro.core import enumerate_rule_based, explain_ranking
from repro.core.partial_order import matching_quality_raw
from repro.dataset import ColumnType, profile_table
from repro.language import AggregateOp, ChartType


@pytest.fixture(scope="module")
def valid_nodes():
    from repro.corpus import make_table

    table = make_table("FlyDelay", scale=0.01)
    nodes = enumerate_rule_based(table)
    return [n for n in nodes if matching_quality_raw(n) > 0]


class TestExplainRanking:
    def test_explanations_in_rank_order(self, valid_nodes):
        explanations = explain_ranking(valid_nodes)
        assert [e.rank for e in explanations] == list(
            range(1, len(valid_nodes) + 1)
        )
        scores = [e.score for e in explanations]
        assert scores == sorted(scores, reverse=True)

    def test_top_limits_output(self, valid_nodes):
        assert len(explain_ranking(valid_nodes, top=3)) == 3

    def test_dominance_counts_consistent(self, valid_nodes):
        explanations = explain_ranking(valid_nodes)
        total_dominates = sum(e.dominates for e in explanations)
        total_dominated = sum(e.dominated_by for e in explanations)
        assert total_dominates == total_dominated  # every edge counted twice

    def test_factors_in_unit_range(self, valid_nodes):
        for explanation in explain_ranking(valid_nodes, top=10):
            assert 0 <= explanation.factors.m <= 1
            assert 0 <= explanation.factors.q <= 1
            assert 0 <= explanation.factors.w <= 1

    def test_notes_mention_transform(self, valid_nodes):
        explanation = explain_ranking(valid_nodes, top=1)[0]
        assert any(
            "summarises" in note or "raw data" in note
            for note in explanation.notes
        )

    def test_scatter_notes_mention_correlation(self, valid_nodes):
        scatters = [n for n in valid_nodes if n.chart is ChartType.SCATTER]
        if not scatters:
            pytest.skip("no scatter among valid nodes at this scale")
        explanations = explain_ranking(scatters)
        assert any("correlation" in note for note in explanations[0].notes)

    def test_summary_readable(self, valid_nodes):
        text = explain_ranking(valid_nodes, top=1)[0].summary()
        assert "factors:" in text
        assert "dominance:" in text

    def test_empty_input(self):
        assert explain_ranking([]) == []


class TestProfile:
    def test_profile_structure(self, flights_table):
        profile = profile_table(flights_table)
        assert profile.num_rows == flights_table.num_rows
        assert len(profile.columns) == flights_table.num_columns
        assert profile.two_column_space == 528 * 6 * 5

    def test_correlations_cover_numeric_pairs(self, flights_table):
        profile = profile_table(flights_table)
        numeric = flights_table.columns_of_type(ColumnType.NUMERICAL)
        expected_pairs = len(numeric) * (len(numeric) - 1) // 2
        assert len(profile.correlations) == expected_pairs

    def test_strongest_pair_is_the_planted_one(self, flights_table):
        profile = profile_table(flights_table)
        a, b, value = profile.strongest_pairs(1)[0]
        assert {a, b} == {"departure_delay", "arrival_delay"}
        assert abs(value) > 0.7

    def test_top_values_only_for_categorical(self, flights_table):
        profile = profile_table(flights_table)
        by_name = {c.name: c for c in profile.columns}
        assert by_name["carrier"].top_values
        assert not by_name["departure_delay"].top_values

    def test_describe_is_readable(self, flights_table):
        text = profile_table(flights_table).describe()
        assert "search space" in text
        assert "carrier" in text
        assert "strongest correlations" in text


class TestCliIntegration:
    def test_explain_command(self, tmp_path):
        import io

        from repro.cli import main
        from repro.corpus import make_table
        from repro.dataset import write_csv

        path = tmp_path / "t.csv"
        write_csv(make_table("FlyDelay", scale=0.005), path)
        out = io.StringIO()
        assert main(["explain", str(path), "--k", "2"], out=out) == 0
        assert "factors:" in out.getvalue()

    def test_profile_command(self, tmp_path):
        import io

        from repro.cli import main
        from repro.corpus import make_table
        from repro.dataset import write_csv

        path = tmp_path / "t.csv"
        write_csv(make_table("FlyDelay", scale=0.005), path)
        out = io.StringIO()
        assert main(["profile", str(path)], out=out) == 0
        assert "search space" in out.getvalue()
