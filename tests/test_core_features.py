"""Unit tests for the feature vector and its encoding."""

import numpy as np
import pytest

from repro.core import extract_features, make_node
from repro.core.features import FEATURE_NAMES, encode_features, series_stats
from repro.dataset import ColumnType
from repro.language import AggregateOp, ChartType, GroupBy, VisQuery


def _node(table, chart=ChartType.BAR):
    query = VisQuery(
        chart=chart, x="carrier", y="departure_delay",
        transform=GroupBy("carrier"), aggregate=AggregateOp.AVG,
    )
    return make_node(table, query)


class TestFeatureVector:
    def test_fourteen_paper_features(self, flights_table):
        node = _node(flights_table)
        pairs = node.features.as_pairs()
        assert len(pairs) == 14
        assert [name for name, _ in pairs] == list(FEATURE_NAMES)

    def test_column_features_match_table(self, flights_table):
        node = _node(flights_table)
        f = node.features
        assert f.x.ctype is ColumnType.CATEGORICAL
        assert f.y.ctype is ColumnType.NUMERICAL
        assert f.x.num_tuples == flights_table.num_rows
        assert f.x.num_distinct == 4  # UA/AA/MQ/OO
        assert f.y.min_value == flights_table.column("departure_delay").min()

    def test_correlation_zero_for_categorical_pair(self, flights_table):
        node = _node(flights_table)
        assert node.features.corr == 0.0

    def test_correlation_for_numeric_pair(self, flights_table):
        query = VisQuery(chart=ChartType.SCATTER, x="departure_delay", y="arrival_delay")
        node = make_node(flights_table, query)
        assert node.features.corr > 0.9  # generated with slope 0.85

    def test_transformed_stats(self, flights_table):
        node = _node(flights_table)
        assert node.features.transformed_rows == 4
        assert node.features.distinct_tx == 4


class TestSeriesStats:
    def test_uniform_series_max_entropy(self):
        entropy, spread, _ = series_stats([1.0, 1.0, 1.0, 1.0])
        assert entropy == pytest.approx(1.0)
        assert spread == pytest.approx(0.0)

    def test_skewed_series_lower_entropy(self):
        entropy_skewed, spread, _ = series_stats([100.0, 1.0, 1.0, 1.0])
        assert entropy_skewed < 0.7
        assert spread > 0.5

    def test_trend_component(self):
        __, __, r2 = series_stats(list(np.linspace(1, 10, 20)))
        assert r2 == pytest.approx(1.0, abs=1e-9)

    def test_empty(self):
        assert series_stats([]) == (0.0, 0.0, 0.0)


class TestEncoding:
    def test_fixed_width(self, flights_table):
        node = _node(flights_table)
        base = encode_features([node.features], extended=False)
        extended = encode_features([node.features], extended=True)
        assert base.shape == (1, 21)
        assert extended.shape == (1, 30)

    def test_empty_batch(self):
        assert encode_features([], extended=False).shape == (0, 21)
        assert encode_features([], extended=True).shape == (0, 30)

    def test_chart_onehot_differs(self, flights_table):
        bar = _node(flights_table, ChartType.BAR).features
        pie = _node(flights_table, ChartType.PIE).features
        row_bar = encode_features([bar])[0]
        row_pie = encode_features([pie])[0]
        assert not np.allclose(row_bar, row_pie)

    def test_encoding_is_finite(self, flights_table):
        node = _node(flights_table)
        row = encode_features([node.features])[0]
        assert np.isfinite(row).all()

    def test_deterministic(self, flights_table):
        node = _node(flights_table)
        a = encode_features([node.features])
        b = encode_features([node.features])
        assert np.array_equal(a, b)
