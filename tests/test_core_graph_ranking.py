"""Unit tests for dominance-graph construction and node ranking."""

import numpy as np
import pytest

from repro.core import FactorScores, build_graph, rank_topological, rank_weight_aware, top_k, weight_aware_scores
from repro.core.graph import GRAPH_STRATEGIES, DominanceGraph
from repro.errors import SelectionError


def _random_scores(n, seed=0):
    rng = np.random.default_rng(seed)
    return [FactorScores(*rng.random(3)) for _ in range(n)]


class TestGraphStrategies:
    @pytest.mark.parametrize("strategy", sorted(GRAPH_STRATEGIES))
    def test_simple_chain(self, strategy):
        scores = [
            FactorScores(0.9, 0.9, 0.9),
            FactorScores(0.5, 0.5, 0.5),
            FactorScores(0.1, 0.1, 0.1),
        ]
        graph = build_graph(scores, strategy)
        assert graph.edge_set() == {(0, 1), (0, 2), (1, 2)}

    @pytest.mark.parametrize("strategy", sorted(GRAPH_STRATEGIES))
    def test_incomparable_pair_has_no_edges(self, strategy):
        scores = [FactorScores(0.9, 0.1, 0.5), FactorScores(0.1, 0.9, 0.5)]
        graph = build_graph(scores, strategy)
        assert graph.num_edges == 0

    @pytest.mark.parametrize("strategy", sorted(GRAPH_STRATEGIES))
    def test_exact_ties_produce_no_edges(self, strategy):
        scores = [FactorScores(0.5, 0.5, 0.5)] * 3
        graph = build_graph(scores, strategy)
        assert graph.num_edges == 0

    @pytest.mark.parametrize("n", [1, 2, 17, 60])
    def test_all_strategies_agree(self, n):
        scores = _random_scores(n, seed=n)
        reference = build_graph(scores, "naive").edge_set()
        for strategy in ("quicksort", "range_tree"):
            assert build_graph(scores, strategy).edge_set() == reference

    def test_strategies_agree_with_heavy_ties(self):
        rng = np.random.default_rng(5)
        # Quantised coordinates create many ties and equal triples.
        scores = [
            FactorScores(*(np.round(rng.random(3) * 3) / 3)) for _ in range(80)
        ]
        reference = build_graph(scores, "naive").edge_set()
        for strategy in ("quicksort", "range_tree"):
            assert build_graph(scores, strategy).edge_set() == reference

    def test_empty_input(self):
        graph = build_graph([], "range_tree")
        assert graph.num_nodes == 0

    def test_unknown_strategy(self):
        with pytest.raises(SelectionError):
            build_graph([], "bogus")

    def test_edge_weights_match_equation_nine(self):
        scores = [FactorScores(0.9, 0.9, 0.9), FactorScores(0.3, 0.3, 0.3)]
        graph = build_graph(scores, "naive")
        (v, weight), = graph.out_edges[0]
        assert v == 1
        assert weight == pytest.approx(0.6)


class TestWeightAwareRanking:
    def test_paper_example_six(self):
        # Figure 8: S(1c)=0.4578, S(5d)=0.1312, S(5c)=0.09, sinks 0.
        # Nodes: 0=1(c), 1=1(d), 2=5(b), 3=5(c), 4=5(d).
        scores = [FactorScores(0, 0, 0)] * 5
        graph = DominanceGraph(
            scores=list(scores),
            out_edges=[
                [(1, 0.4578)],  # 1(c) -> 1(d)
                [],             # 1(d)
                [],             # 5(b)
                [(2, 0.09)],    # 5(c) -> 5(b)
                [(1, 0.1312)],  # 5(d) -> 1(d)
            ],
        )
        s = weight_aware_scores(graph)
        assert s[0] == pytest.approx(0.4578)
        assert s[4] == pytest.approx(0.1312)
        assert s[3] == pytest.approx(0.09)
        assert s[1] == s[2] == 0.0
        assert top_k(graph, 3) == [0, 4, 3]  # 1(c), 5(d), 5(c)

    def test_scores_accumulate_transitively(self):
        scores = [
            FactorScores(0.9, 0.9, 0.9),
            FactorScores(0.5, 0.5, 0.5),
            FactorScores(0.1, 0.1, 0.1),
        ]
        graph = build_graph(scores, "naive")
        s = weight_aware_scores(graph)
        # S(top) includes S(mid) through the chain.
        assert s[0] > s[1] > s[2] == 0.0

    def test_rank_is_permutation(self):
        scores = _random_scores(40)
        graph = build_graph(scores, "range_tree")
        order = rank_weight_aware(graph)
        assert sorted(order) == list(range(40))

    def test_cycle_detected(self):
        graph = DominanceGraph(
            scores=[FactorScores(0, 0, 0)] * 2,
            out_edges=[[(1, 0.1)], [(0, 0.1)]],
        )
        with pytest.raises(SelectionError):
            weight_aware_scores(graph)


class TestTopologicalRanking:
    def test_source_first(self):
        scores = [
            FactorScores(0.1, 0.1, 0.1),
            FactorScores(0.9, 0.9, 0.9),
        ]
        graph = build_graph(scores, "naive")
        assert rank_topological(graph)[0] == 1

    def test_permutation(self):
        scores = _random_scores(25, seed=3)
        graph = build_graph(scores, "naive")
        assert sorted(rank_topological(graph)) == list(range(25))

    def test_top_k_validates(self):
        graph = build_graph(_random_scores(5), "naive")
        with pytest.raises(SelectionError):
            top_k(graph, -1)
        with pytest.raises(SelectionError):
            top_k(graph, 2, method="bogus")
        assert len(top_k(graph, 2, method="topological")) == 2
