"""Unit tests for multi-column visualizations (Section II-B extensions)."""

import pytest

from repro.core import (
    enumerate_grouped,
    enumerate_multi_series,
    execute_grouped,
    execute_multi_series,
    multi_series_quality,
)
from repro.errors import ValidationError
from repro.language import (
    AggregateOp,
    BinByGranularity,
    BinGranularity,
    ChartType,
    GroupBy,
)


class TestExecuteMultiSeries:
    def test_two_series_share_x_buckets(self, flights_table):
        data = execute_multi_series(
            flights_table,
            "scheduled",
            ["departure_delay", "arrival_delay"],
            BinByGranularity("scheduled", BinGranularity.HOUR),
            AggregateOp.AVG,
            ChartType.LINE,
        )
        assert data.num_series == 2
        assert set(data.series) == {"departure_delay", "arrival_delay"}
        for ys in data.series.values():
            assert len(ys) == data.num_points

    def test_correlated_series_move_together(self, flights_table):
        from repro.core import correlation_strength

        data = execute_multi_series(
            flights_table,
            "scheduled",
            ["departure_delay", "arrival_delay"],
            BinByGranularity("scheduled", BinGranularity.HOUR),
            AggregateOp.AVG,
        )
        assert correlation_strength(
            data.series["departure_delay"], data.series["arrival_delay"]
        ) > 0.5

    def test_single_y_rejected(self, flights_table):
        with pytest.raises(ValidationError):
            execute_multi_series(
                flights_table, "scheduled", ["departure_delay"],
                BinByGranularity("scheduled", BinGranularity.HOUR),
                AggregateOp.AVG,
            )

    def test_avg_needs_numeric_ys(self, flights_table):
        with pytest.raises(ValidationError):
            execute_multi_series(
                flights_table, "scheduled", ["carrier", "destination"],
                BinByGranularity("scheduled", BinGranularity.HOUR),
                AggregateOp.AVG,
            )


class TestExecuteGrouped:
    def test_figure_1b_shape(self, flights_table):
        """Monthly passengers stacked by destination — Figure 1(b)."""
        data = execute_grouped(
            flights_table, "destination", "scheduled", "passengers",
            BinByGranularity("scheduled", BinGranularity.MONTH),
            AggregateOp.SUM, ChartType.BAR,
        )
        assert data.num_series == 5  # five destinations in the fixture
        assert data.chart is ChartType.BAR
        # Stacked sums per month equal the unconditional monthly sums.
        from repro.language import VisQuery, execute

        total = execute(
            VisQuery(
                chart=ChartType.BAR, x="scheduled", y="passengers",
                transform=BinByGranularity("scheduled", BinGranularity.MONTH),
                aggregate=AggregateOp.SUM,
            ),
            flights_table,
        )
        stacked = [
            sum(data.series[s][i] for s in data.series)
            for i in range(data.num_points)
        ]
        assert stacked == pytest.approx(list(total.y_values))

    def test_max_groups_cap(self, flights_table):
        data = execute_grouped(
            flights_table, "destination", "scheduled", "passengers",
            BinByGranularity("scheduled", BinGranularity.MONTH),
            AggregateOp.SUM, max_groups=3,
        )
        assert data.num_series == 3

    def test_group_by_numeric_rejected(self, flights_table):
        with pytest.raises(ValidationError):
            execute_grouped(
                flights_table, "passengers", "scheduled", "departure_delay",
                BinByGranularity("scheduled", BinGranularity.MONTH),
                AggregateOp.SUM,
            )

    def test_count_works_without_z_type(self, flights_table):
        data = execute_grouped(
            flights_table, "carrier", "scheduled", "destination",
            BinByGranularity("scheduled", BinGranularity.MONTH),
            AggregateOp.CNT,
        )
        total_rows = sum(v for ys in data.series.values() for v in ys)
        assert total_rows == flights_table.num_rows


class TestEnumeration:
    def test_multi_series_candidates_bounded(self, flights_table):
        candidates = enumerate_multi_series(flights_table)
        assert candidates
        for data in candidates:
            assert 2 <= data.num_points <= 60
            assert data.num_series >= 2

    def test_grouped_candidates_bounded(self, flights_table):
        candidates = enumerate_grouped(flights_table)
        assert candidates
        for data in candidates:
            assert 2 <= data.num_points <= 60
            assert 2 <= data.num_series


class TestQuality:
    def test_contrasting_series_beat_identical(self, flights_table):
        good = execute_multi_series(
            flights_table, "scheduled",
            ["departure_delay", "passengers"],
            BinByGranularity("scheduled", BinGranularity.MONTH),
            AggregateOp.AVG,
        )
        same = execute_multi_series(
            flights_table, "scheduled",
            ["departure_delay", "departure_delay2"]
            if "departure_delay2" in flights_table
            else ["departure_delay", "arrival_delay"],
            BinByGranularity("scheduled", BinGranularity.MONTH),
            AggregateOp.AVG,
        )
        assert multi_series_quality(good) >= multi_series_quality(same)

    def test_degenerate_scores_zero(self, flights_table):
        data = execute_multi_series(
            flights_table, "scheduled",
            ["departure_delay", "arrival_delay"],
            BinByGranularity("scheduled", BinGranularity.YEAR),
            AggregateOp.AVG,
        )
        if data.num_points < 2:
            assert multi_series_quality(data) == 0.0


class TestRendering:
    def test_vega_spec(self, flights_table):
        from repro.render import multi_to_vega_lite

        data = execute_grouped(
            flights_table, "carrier", "scheduled", "passengers",
            BinByGranularity("scheduled", BinGranularity.MONTH),
            AggregateOp.SUM, ChartType.BAR,
        )
        spec = multi_to_vega_lite(data)
        assert spec["encoding"]["color"]["field"] == "series"
        assert spec["encoding"]["y"]["stack"] == "zero"
        assert len(spec["data"]["values"]) == data.num_points * data.num_series

    def test_ascii_legend(self, flights_table):
        from repro.render import render_multi_ascii

        data = execute_multi_series(
            flights_table, "scheduled",
            ["departure_delay", "arrival_delay"],
            BinByGranularity("scheduled", BinGranularity.HOUR),
            AggregateOp.AVG,
        )
        text = render_multi_ascii(data)
        assert "legend:" in text
        assert "departure_delay" in text
