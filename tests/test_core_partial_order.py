"""Unit tests for the partial-order factors M, Q, W and dominance."""

import pytest

from repro.core import (
    FactorScores,
    PartialOrderScorer,
    dominates,
    edge_weight,
    make_node,
    matching_quality_raw,
    strictly_dominates,
    transformation_quality,
)
from repro.core.enumeration import enumerate_rule_based
from repro.dataset import Table
from repro.language import AggregateOp, BinIntoBuckets, ChartType, GroupBy, VisQuery


def _grouped_node(table, chart, agg=AggregateOp.SUM, x="carrier", y="passengers"):
    query = VisQuery(chart=chart, x=x, y=y, transform=GroupBy(x), aggregate=agg)
    return make_node(table, query)


class TestMatchingQuality:
    def test_avg_pie_scores_zero(self, flights_table):
        # Eq. (1): pies with AVG make no part-to-whole sense.
        node = _grouped_node(flights_table, ChartType.PIE, AggregateOp.AVG)
        assert matching_quality_raw(node) == 0.0

    def test_sum_pie_scores_positive(self, flights_table):
        node = _grouped_node(flights_table, ChartType.PIE, AggregateOp.SUM)
        assert 0.0 < matching_quality_raw(node) <= 1.0

    def test_pie_with_negative_slices_scores_zero(self):
        table = Table.from_dict(
            "t", {"c": ["a", "b"], "v": [5.0, -2.0]}
        )
        node = _grouped_node(table, ChartType.PIE, AggregateOp.SUM, "c", "v")
        assert matching_quality_raw(node) == 0.0

    def test_bar_in_sweet_spot_scores_one(self, flights_table):
        node = _grouped_node(flights_table, ChartType.BAR)
        assert matching_quality_raw(node) == 1.0  # 4 carriers, 2<=d<=20

    def test_bar_beyond_twenty_decays(self):
        table = Table.from_dict(
            "t",
            {"c": [f"cat{i}" for i in range(40)], "v": list(range(40))},
        )
        node = _grouped_node(table, ChartType.BAR, AggregateOp.SUM, "c", "v")
        assert matching_quality_raw(node) == pytest.approx(0.5)  # 20/40

    def test_scatter_uses_correlation_strength(self, flights_table):
        node = make_node(
            flights_table,
            VisQuery(chart=ChartType.SCATTER, x="departure_delay", y="arrival_delay"),
        )
        assert matching_quality_raw(node) > 0.9

    def test_line_binary_trend(self, flights_table):
        # Monotone values: bin numbers -> SUM increases, trend = 1.
        table = Table.from_dict(
            "t", {"x": list(range(100)), "y": [v * 2.0 for v in range(100)]}
        )
        node = make_node(
            table,
            VisQuery(chart=ChartType.LINE, x="x", y="y",
                     transform=BinIntoBuckets("x", 10), aggregate=AggregateOp.AVG),
        )
        assert matching_quality_raw(node) == 1.0


class TestTransformationQuality:
    def test_reduction_rewarded(self, flights_table):
        node = _grouped_node(flights_table, ChartType.BAR)
        # 240 rows -> 4 groups: Q = 1 - 4/240.
        assert transformation_quality(node) == pytest.approx(1 - 4 / 240)

    def test_raw_data_scores_zero(self, flights_table):
        node = make_node(
            flights_table,
            VisQuery(chart=ChartType.SCATTER, x="departure_delay", y="arrival_delay"),
        )
        assert transformation_quality(node) == 0.0


class TestScorer:
    def test_scores_in_unit_range(self, flights_table):
        nodes = enumerate_rule_based(flights_table)
        scores = PartialOrderScorer().score(nodes)
        assert len(scores) == len(nodes)
        for s in scores:
            assert 0.0 <= s.m <= 1.0
            assert 0.0 <= s.q <= 1.0
            assert 0.0 <= s.w <= 1.0

    def test_m_normalised_per_chart(self, flights_table):
        # Eq. (5): at least one node of each chart type present hits 1.
        nodes = enumerate_rule_based(flights_table)
        scores = PartialOrderScorer().score(nodes)
        by_chart = {}
        for node, score in zip(nodes, scores):
            by_chart.setdefault(node.chart, []).append(score.m)
        for chart, values in by_chart.items():
            if max(values) > 0:
                assert max(values) == pytest.approx(1.0)

    def test_column_importance_matches_paper_formula(self, flights_table):
        nodes = enumerate_rule_based(flights_table)
        scorer = PartialOrderScorer()
        importance = scorer.column_importance(nodes)
        # W(X) = #-charts containing X / #-charts (Eq. 7).
        count = sum(1 for n in nodes if "carrier" in n.columns)
        assert importance["carrier"] == pytest.approx(count / len(nodes))

    def test_empty_input(self):
        assert PartialOrderScorer().score([]) == []


class TestDominance:
    def test_definition_two(self):
        a = FactorScores(0.9, 0.8, 0.7)
        b = FactorScores(0.5, 0.8, 0.1)
        assert dominates(a, b)
        assert strictly_dominates(a, b)
        assert not strictly_dominates(b, a)

    def test_ties_dominate_but_not_strictly(self):
        a = FactorScores(0.5, 0.5, 0.5)
        b = FactorScores(0.5, 0.5, 0.5)
        assert dominates(a, b)
        assert not strictly_dominates(a, b)

    def test_incomparable(self):
        a = FactorScores(0.9, 0.1, 0.5)
        b = FactorScores(0.1, 0.9, 0.5)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_edge_weight_equation_nine(self):
        # The paper's Example 5: ((1.00-0) + (0.99976-0.99633) +
        # (0.89-0.52)) / 3 = 0.4578.
        u = FactorScores(1.00, 0.99976, 0.89)
        v = FactorScores(0.0, 0.99633, 0.52)
        assert edge_weight(u, v) == pytest.approx(0.4578, abs=1e-4)
