"""Unit tests for the visualization recognizer."""

import numpy as np
import pytest

from repro.core import VisualizationRecognizer, enumerate_rule_based
from repro.core.partial_order import matching_quality_raw
from repro.errors import ModelError, NotFittedError


@pytest.fixture(scope="module")
def labelled_nodes():
    """Rule-based candidates of a deterministic table, labelled by the
    expert validity criterion (M(v) > 0) — a learnable rule-shaped
    target, which is the point of recognition."""
    import datetime as dt
    import random

    from repro.dataset import Table

    rng = random.Random(11)
    n = 160
    table = Table.from_dict(
        "t",
        {
            "when": [dt.datetime(2015, 1 + i % 12, 1 + i % 28, i % 24) for i in range(n)],
            "kind": [rng.choice(list("abcd")) for _ in range(n)],
            "v1": [rng.gauss(5, 2) for _ in range(n)],
            "v2": [rng.gauss(0, 1) for _ in range(n)],
        },
    )
    nodes = enumerate_rule_based(table)
    labels = [matching_quality_raw(node) > 0 for node in nodes]
    return nodes, labels


class TestFitPredict:
    #: The linear SVM cannot express every rule interaction, so its
    #: floor is lower — matching the paper's DT > SVM finding.
    _FLOORS = {"decision_tree": 0.85, "bayes": 0.7, "svm": 0.7}

    @pytest.mark.parametrize("model", ["decision_tree", "bayes", "svm"])
    def test_models_learn_rule_labels(self, labelled_nodes, model):
        nodes, labels = labelled_nodes
        recognizer = VisualizationRecognizer(model=model).fit(nodes, labels)
        predictions = recognizer.predict(nodes)
        agreement = float(np.mean(predictions == np.asarray(labels)))
        assert agreement > self._FLOORS[model], f"{model} agreement {agreement}"

    def test_dt_alias(self, labelled_nodes):
        nodes, labels = labelled_nodes
        recognizer = VisualizationRecognizer(model="dt")
        assert recognizer.model_name == "decision_tree"
        recognizer.fit(nodes, labels)

    def test_filter_valid_returns_subset(self, labelled_nodes):
        nodes, labels = labelled_nodes
        recognizer = VisualizationRecognizer().fit(nodes, labels)
        valid = recognizer.filter_valid(nodes)
        assert 0 < len(valid) <= len(nodes)
        assert all(v in nodes for v in valid)

    def test_evaluate_returns_prf(self, labelled_nodes):
        nodes, labels = labelled_nodes
        recognizer = VisualizationRecognizer().fit(nodes, labels)
        metrics = recognizer.evaluate(nodes, labels)
        assert set(metrics) == {"precision", "recall", "f1"}
        assert metrics["f1"] > 0.8

    def test_predict_empty(self, labelled_nodes):
        nodes, labels = labelled_nodes
        recognizer = VisualizationRecognizer().fit(nodes, labels)
        assert recognizer.predict([]).shape == (0,)


class TestValidation:
    def test_unknown_model(self):
        with pytest.raises(ModelError):
            VisualizationRecognizer(model="forest")

    def test_not_fitted(self, labelled_nodes):
        nodes, _ = labelled_nodes
        with pytest.raises(NotFittedError):
            VisualizationRecognizer().predict(nodes)

    def test_misaligned_labels(self, labelled_nodes):
        nodes, _ = labelled_nodes
        with pytest.raises(ModelError):
            VisualizationRecognizer().fit(nodes, [True])

    def test_single_class_rejected(self, labelled_nodes):
        nodes, _ = labelled_nodes
        with pytest.raises(ModelError):
            VisualizationRecognizer().fit(nodes, [True] * len(nodes))

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            VisualizationRecognizer().fit([], [])


class TestClassBalancing:
    def test_balancing_improves_minority_recall(self, labelled_nodes):
        nodes, labels = labelled_nodes
        # Make the positive class rare by flipping most positives off.
        rng = np.random.default_rng(0)
        skewed = list(labels)
        positives = [i for i, l in enumerate(skewed) if l]
        for i in positives[: len(positives) // 2]:
            skewed[i] = False
        balanced = VisualizationRecognizer(model="svm", balance_classes=True)
        unbalanced = VisualizationRecognizer(model="svm", balance_classes=False)
        r_balanced = balanced.fit(nodes, skewed).evaluate(nodes, skewed)["recall"]
        r_unbalanced = unbalanced.fit(nodes, skewed).evaluate(nodes, skewed)["recall"]
        assert r_balanced >= r_unbalanced - 0.05
