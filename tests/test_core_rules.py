"""Unit tests for the Section V-A decision rules and their completeness."""

import pytest

from repro.core import (
    aggregate_rules,
    canonical_order,
    complies,
    sorting_rules,
    transform_rules,
    visualization_rules,
)
from repro.core.rules import RuleConfig
from repro.dataset import Column, ColumnType, Table
from repro.language import (
    AggregateOp,
    BinByGranularity,
    BinGranularity,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    OrderBy,
    OrderTarget,
    VisQuery,
)


def _col(ctype, name="x"):
    values = {
        ColumnType.CATEGORICAL: ["a", "b"],
        ColumnType.NUMERICAL: [1.0, 2.0],
        ColumnType.TEMPORAL: [0, 86400],
    }[ctype]
    return Column(name, ctype, values)


class TestTransformationRules:
    def test_categorical_only_groups(self):
        transforms = transform_rules(_col(ColumnType.CATEGORICAL))
        assert all(isinstance(t, GroupBy) for t in transforms)

    def test_numerical_only_bins(self):
        transforms = transform_rules(_col(ColumnType.NUMERICAL))
        assert all(isinstance(t, BinIntoBuckets) for t in transforms)

    def test_temporal_groups_and_bins_every_granularity(self):
        transforms = transform_rules(_col(ColumnType.TEMPORAL))
        kinds = {type(t) for t in transforms}
        assert kinds == {GroupBy, BinByGranularity}
        granularities = {
            t.granularity for t in transforms if isinstance(t, BinByGranularity)
        }
        assert granularities == set(BinGranularity)

    def test_numeric_y_gets_full_agg(self):
        assert set(aggregate_rules(_col(ColumnType.NUMERICAL))) == {
            AggregateOp.AVG, AggregateOp.SUM, AggregateOp.CNT,
        }

    def test_non_numeric_y_gets_count_only(self):
        assert aggregate_rules(_col(ColumnType.CATEGORICAL)) == [AggregateOp.CNT]
        assert aggregate_rules(_col(ColumnType.TEMPORAL)) == [AggregateOp.CNT]


class TestSortingRules:
    def test_numeric_x_sortable(self):
        options = sorting_rules(ColumnType.NUMERICAL, y_is_numeric=True)
        targets = {o.target for o in options if o is not None}
        assert targets == {OrderTarget.X, OrderTarget.Y}

    def test_categorical_x_not_sortable(self):
        options = sorting_rules(ColumnType.CATEGORICAL, y_is_numeric=True)
        assert all(o is None or o.target is OrderTarget.Y for o in options)

    def test_unsorted_always_an_option(self):
        assert None in sorting_rules(ColumnType.TEMPORAL, False)


class TestVisualizationRules:
    def test_cat_num_gives_bar_pie(self):
        assert set(visualization_rules(ColumnType.CATEGORICAL, True)) == {
            ChartType.BAR, ChartType.PIE,
        }

    def test_num_num_gives_line_bar(self):
        assert set(visualization_rules(ColumnType.NUMERICAL, True)) == {
            ChartType.LINE, ChartType.BAR,
        }

    def test_correlated_num_num_adds_scatter(self):
        charts = visualization_rules(ColumnType.NUMERICAL, True, correlated=True)
        assert ChartType.SCATTER in charts

    def test_tem_num_gives_line(self):
        assert visualization_rules(ColumnType.TEMPORAL, True) == [ChartType.LINE]

    def test_non_numeric_y_forbidden(self):
        assert visualization_rules(ColumnType.CATEGORICAL, False) == []

    def test_completeness_every_type_pair_has_a_decision(self):
        # Section V-C: the rules cover every (T(X), numeric-Y) case.
        for x_type in ColumnType:
            charts = visualization_rules(x_type, True, correlated=True)
            assert charts, f"no chart decision for T(X)={x_type}"


class TestCanonicalOrder:
    def test_line_orders_by_x_when_sortable(self):
        order = canonical_order(ChartType.LINE, ColumnType.TEMPORAL)
        assert order == OrderBy(OrderTarget.X)

    def test_bar_over_categories_orders_by_value(self):
        order = canonical_order(ChartType.BAR, ColumnType.CATEGORICAL)
        assert order == OrderBy(OrderTarget.Y, descending=True)

    def test_line_over_categories_falls_back_to_value(self):
        order = canonical_order(ChartType.LINE, ColumnType.CATEGORICAL)
        assert order.target is OrderTarget.Y


class TestComplies:
    @pytest.fixture
    def table(self):
        return Table.from_dict(
            "t",
            {
                "cat": ["a", "b", "a", "c"],
                "num": [1.0, 2.0, 3.0, 4.0],
                "tem": [0, 86400, 172800, 259200],
            },
            types={"tem": ColumnType.TEMPORAL},
        )

    def test_good_grouped_bar(self, table):
        q = VisQuery(chart=ChartType.BAR, x="cat", y="num",
                     transform=GroupBy("cat"), aggregate=AggregateOp.AVG)
        assert complies(q, table)

    def test_binning_categorical_fails(self, table):
        q = VisQuery(chart=ChartType.BAR, x="cat", y="num",
                     transform=BinIntoBuckets("cat", 5), aggregate=AggregateOp.AVG)
        assert not complies(q, table)

    def test_grouping_numerical_fails(self, table):
        q = VisQuery(chart=ChartType.BAR, x="num", y="num",
                     transform=GroupBy("num"), aggregate=AggregateOp.CNT)
        assert not complies(q, table)

    def test_avg_non_numeric_y_fails(self, table):
        q = VisQuery(chart=ChartType.BAR, x="cat", y="tem",
                     transform=GroupBy("cat"), aggregate=AggregateOp.AVG)
        assert not complies(q, table)

    def test_pie_on_temporal_x_fails(self, table):
        q = VisQuery(chart=ChartType.PIE, x="tem", y="num",
                     transform=BinByGranularity("tem", BinGranularity.DAY),
                     aggregate=AggregateOp.AVG)
        assert not complies(q, table)

    def test_raw_scatter_requires_correlation(self, table):
        q = VisQuery(chart=ChartType.SCATTER, x="num", y="num")
        assert complies(q, table, correlated=True)
        assert not complies(q, table, correlated=False)

    def test_raw_pie_never_complies(self, table):
        q = VisQuery(chart=ChartType.PIE, x="num", y="num")
        assert not complies(q, table, correlated=True)
