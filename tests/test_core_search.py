"""Unit tests for keyword-driven visualization search."""

import pytest

from repro.core import enumerate_rule_based, keyword_search, score_keywords
from repro.language import AggregateOp, BinGranularity, ChartType


class TestScoreKeywords:
    @pytest.fixture(scope="class")
    def nodes(self, ):
        import datetime as dt
        import random

        from repro.dataset import Table

        rng = random.Random(3)
        n = 120
        table = Table.from_dict(
            "flights",
            {
                "scheduled": [dt.datetime(2015, 1 + i % 12, 1 + i % 28, i % 24) for i in range(n)],
                "carrier": [rng.choice(["UA", "AA"]) for _ in range(n)],
                "delay": [rng.gauss(10, 5) for _ in range(n)],
                "passengers": [rng.randint(50, 200) for _ in range(n)],
            },
        )
        self_nodes = enumerate_rule_based(table)
        return table, self_nodes

    def test_column_name_matches(self, nodes):
        _, candidates = nodes
        delay_node = next(n for n in candidates if n.y_name == "delay")
        score, matched = score_keywords(delay_node, ["delay"])
        assert score == 1.0
        assert matched == ["delay"]

    def test_chart_synonyms(self, nodes):
        _, candidates = nodes
        pie = next(n for n in candidates if n.chart is ChartType.PIE)
        score, matched = score_keywords(pie, ["share"])
        assert score == 1.0

    def test_aggregate_synonyms(self, nodes):
        _, candidates = nodes
        avg = next(n for n in candidates if n.query.aggregate is AggregateOp.AVG)
        score, _ = score_keywords(avg, ["average"])
        assert score == 1.0

    def test_granularity_words(self, nodes):
        _, candidates = nodes
        from repro.language import BinByGranularity

        hourly = next(
            n for n in candidates
            if isinstance(n.query.transform, BinByGranularity)
            and n.query.transform.granularity is BinGranularity.HOUR
        )
        score, _ = score_keywords(hourly, ["hourly"])
        assert score == 1.0

    def test_stop_words_ignored(self, nodes):
        _, candidates = nodes
        node = candidates[0]
        with_stop, _ = score_keywords(node, ["by", "per", node.x_name.split("_")[0]])
        without, _ = score_keywords(node, [node.x_name.split("_")[0]])
        assert with_stop == without

    def test_empty_keywords(self, nodes):
        _, candidates = nodes
        assert score_keywords(candidates[0], []) == (0.0, [])


class TestKeywordSearch:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.corpus import make_table

        return make_table("FlyDelay", scale=0.01)

    def test_average_delay_by_hour(self, table):
        hits = keyword_search(table, "average delay by hour", k=3)
        assert hits
        top = hits[0].node
        assert top.query.aggregate is AggregateOp.AVG
        assert "delay" in top.y_name
        assert top.query.transform.granularity is BinGranularity.HOUR

    def test_passengers_share_by_carrier(self, table):
        hits = keyword_search(table, "share of passengers per carrier", k=3)
        assert hits
        top = hits[0].node
        assert top.chart is ChartType.PIE
        assert top.x_name == "carrier"
        assert top.y_name == "passengers"

    def test_no_match_returns_empty(self, table):
        assert keyword_search(table, "zzzz qqqq", k=5) == []

    def test_k_limits_results(self, table):
        assert len(keyword_search(table, "delay", k=2)) == 2

    def test_results_sorted_by_score(self, table):
        hits = keyword_search(table, "total passengers by month", k=5)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_quality_breaks_keyword_ties(self, table):
        hits = keyword_search(table, "delay", k=10)
        tied = [h for h in hits if h.keyword_score == hits[0].keyword_score]
        qualities = [h.quality_score for h in tied]
        assert qualities == sorted(qualities, reverse=True)
