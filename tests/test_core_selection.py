"""Integration tests for end-to-end selection, progressive top-k, hybrid."""

import numpy as np
import pytest

from repro.core import (
    HybridRanker,
    LearningToRankRanker,
    PartialOrderRanker,
    enumerate_rule_based,
    progressive_top_k,
    select_top_k,
)
from repro.core.partial_order import matching_quality_raw
from repro.core.progressive import estimate_column_importance
from repro.errors import SelectionError


class TestSelectTopK:
    def test_returns_k_nodes_with_timings(self, flights_table):
        result = select_top_k(flights_table, k=5)
        assert len(result.nodes) == 5
        assert set(result.timings) == {"enumerate", "recognize", "rank"}
        assert result.total_seconds > 0
        assert abs(sum(result.phase_fraction(p) for p in result.timings) - 1.0) < 1e-9

    def test_order_is_full_permutation_of_valid(self, flights_table):
        result = select_top_k(flights_table, k=3)
        assert sorted(result.order) == list(range(result.valid))

    def test_heuristic_filter_drops_zero_matching_quality(self, flights_table):
        result = select_top_k(flights_table, k=10)
        for node in result.nodes:
            assert matching_quality_raw(node) > 0

    def test_exhaustive_mode_has_more_candidates(self, flights_table):
        rules = select_top_k(flights_table, k=2, enumeration="rules")
        exhaustive = select_top_k(flights_table, k=2, enumeration="exhaustive")
        assert exhaustive.candidates > rules.candidates

    def test_k_zero(self, flights_table):
        assert select_top_k(flights_table, k=0).nodes == []

    def test_negative_k_rejected(self, flights_table):
        with pytest.raises(SelectionError):
            select_top_k(flights_table, k=-1)

    def test_ltr_mode_requires_model(self, flights_table):
        with pytest.raises(SelectionError):
            select_top_k(flights_table, ranker="learning_to_rank")

    def test_unknown_ranker(self, flights_table):
        with pytest.raises(SelectionError):
            select_top_k(flights_table, ranker="bogus")

    @pytest.mark.parametrize("strategy", ["naive", "quicksort", "range_tree"])
    def test_graph_strategies_give_same_top_k(self, flights_table, strategy):
        reference = select_top_k(flights_table, k=5, graph_strategy="naive")
        other = select_top_k(flights_table, k=5, graph_strategy=strategy)
        assert [n.key() for n in other.nodes] == [n.key() for n in reference.nodes]


class TestPartialOrderRanker:
    def test_rank_is_permutation(self, flights_table):
        nodes = enumerate_rule_based(flights_table)
        order = PartialOrderRanker().rank(nodes)
        assert sorted(order) == list(range(len(nodes)))

    def test_empty(self):
        assert PartialOrderRanker().rank([]) == []


class TestProgressive:
    def test_returns_k_nodes(self, flights_table):
        result = progressive_top_k(flights_table, k=5)
        assert len(result.nodes) == 5
        assert len(result.scores) == 5

    def test_scores_descending(self, flights_table):
        result = progressive_top_k(flights_table, k=8)
        assert result.scores == sorted(result.scores, reverse=True)

    def test_prunes_columns(self, flights_table):
        result = progressive_top_k(flights_table, k=2)
        assert result.columns_opened <= result.columns_total
        assert result.candidates_generated > 0

    def test_no_zero_quality_results(self, flights_table):
        result = progressive_top_k(flights_table, k=10)
        for node in result.nodes:
            assert matching_quality_raw(node) > 0

    def test_importance_estimate_sums_to_about_two(self, flights_table):
        # Each two-column chart contributes to two columns' counts, so
        # the shares sum to just under 2 (one-column charts add 1 each).
        importance = estimate_column_importance(flights_table)
        assert 1.0 <= sum(importance.values()) <= 2.0 + 1e-9

    def test_progressive_matches_full_composite_ranking(self, flights_table):
        """The tournament must emit the same top-k as scoring every
        rule-based candidate with the composite and sorting."""
        from repro.core.enumeration import EnumerationConfig, EnumerationContext
        from repro.core.progressive import _composite

        config = EnumerationConfig()
        importance = estimate_column_importance(flights_table, config)
        pair_sums = [
            importance[a] + importance[b]
            for a in flights_table.column_names
            for b in flights_table.column_names
        ]
        max_w = max(pair_sums)
        nodes = enumerate_rule_based(flights_table, config)
        eligible = [n for n in nodes if matching_quality_raw(n) > 0]
        expected = sorted(
            (_composite(n, importance, max_w) for n in eligible), reverse=True
        )[:6]
        result = progressive_top_k(flights_table, k=6, config=config)
        assert result.scores == pytest.approx(expected)


class TestHybridRanker:
    @pytest.fixture()
    def trained(self, flights_table):
        nodes = enumerate_rule_based(flights_table)
        # Synthetic relevance: the composite expert score, quantised.
        scorer_rel = [min(4, int(4 * matching_quality_raw(n))) for n in nodes]
        ltr = LearningToRankRanker(n_estimators=10).fit([(nodes, scorer_rel)])
        return nodes, scorer_rel, ltr

    def test_rank_is_permutation(self, trained):
        nodes, _, ltr = trained
        hybrid = HybridRanker(ltr)
        assert sorted(hybrid.rank(nodes)) == list(range(len(nodes)))

    def test_alpha_zero_equals_ltr(self, trained):
        nodes, _, ltr = trained
        hybrid = HybridRanker(ltr, alpha=0.0)
        assert hybrid.rank(nodes) == ltr.rank(nodes)

    def test_fit_alpha_returns_grid_value(self, trained):
        nodes, rel, ltr = trained
        hybrid = HybridRanker(ltr)
        alpha = hybrid.fit_alpha([(nodes, rel)], grid=(0.0, 1.0, 2.0))
        assert alpha in (0.0, 1.0, 2.0)
        assert hybrid.alpha == alpha

    def test_fit_alpha_empty_rejected(self, trained):
        _, _, ltr = trained
        with pytest.raises(Exception):
            HybridRanker(ltr).fit_alpha([])
