"""Tests for the opt-in "smooth" trend family (Figure 1(c) vs 1(d))."""

import numpy as np
import pytest

from repro.core.trend import (
    EXTENDED_TREND_FAMILIES,
    TREND_FAMILIES,
    fit_trend,
    smoothness,
)


class TestSmoothness:
    def test_seasonal_curve_is_smooth(self):
        t = np.linspace(0, 4 * np.pi, 48)
        assert smoothness(np.sin(t)) > 0.8

    def test_white_noise_is_not_smooth(self):
        rng = np.random.default_rng(0)
        assert smoothness(rng.normal(size=200)) < 0.3

    def test_constant_is_perfectly_smooth(self):
        assert smoothness([3.0] * 10) == 1.0

    def test_linear_ramp_is_smooth(self):
        assert smoothness(np.linspace(0, 1, 30)) > 0.8

    def test_short_series(self):
        assert smoothness([1.0, 2.0]) == 0.0

    def test_alternating_series_clipped_to_zero(self):
        # Negative lag-1 autocorrelation clips to 0, never below.
        assert smoothness([1.0, -1.0] * 20) == 0.0


class TestExtendedFamilies:
    def _hourly_delays(self):
        """A Figure 1(c)-style seasonal curve: a clean midday peak that
        rises and falls, so no monotone family can fit it."""
        hours = np.arange(24, dtype=float)
        return 6.0 + 10.0 * np.exp(-((hours - 12.0) ** 2) / 14.0)

    def test_figure_1c_fails_monotone_families(self):
        result = fit_trend(self._hourly_delays(), families=TREND_FAMILIES)
        assert not result.has_trend  # no monotone family fits

    def test_figure_1c_passes_with_smooth_family(self):
        result = fit_trend(
            self._hourly_delays(), families=EXTENDED_TREND_FAMILIES
        )
        assert result.has_trend
        assert result.family == "smooth"

    def test_figure_1d_fails_even_extended(self):
        # Daily delays: fluctuation with no structure.
        rng = np.random.default_rng(1)
        noise = 10 + 5 * rng.normal(size=200)
        result = fit_trend(noise, families=EXTENDED_TREND_FAMILIES)
        assert not result.has_trend

    def test_monotone_families_still_win_when_applicable(self):
        y = np.exp(np.linspace(0, 3, 40))
        result = fit_trend(y, families=EXTENDED_TREND_FAMILIES)
        assert result.has_trend
        # The exponential fit is exact (R^2 = 1) and beats smoothness.
        assert result.per_family["exponential"] == pytest.approx(1.0, abs=1e-9)

    def test_default_families_exclude_smooth(self):
        result = fit_trend(self._hourly_delays())
        assert "smooth" not in result.per_family
