"""Tests for UDF binning in rule configs and enumeration."""

import pytest

from repro.core import EnumerationConfig, enumerate_exhaustive, enumerate_rule_based
from repro.core.rules import RuleConfig, complies, transform_rules
from repro.dataset import Column, ColumnType, Table
from repro.language import AggregateOp, BinByUDF, ChartType, VisQuery, execute


def _sign(value: float) -> str:
    return "late" if value > 0 else "early"


@pytest.fixture
def table():
    return Table.from_dict(
        "t",
        {
            "kind": ["a", "b"] * 20,
            "delay": [(-1) ** i * (i + 1.0) for i in range(40)],
            "size": [float(i % 7) for i in range(40)],
        },
    )


class TestUdfRules:
    def test_transform_rules_include_registered_udfs(self, table):
        config = RuleConfig(udfs=(("sign", _sign),))
        transforms = transform_rules(table.column("delay"), config)
        udf_transforms = [t for t in transforms if isinstance(t, BinByUDF)]
        assert len(udf_transforms) == 1
        assert udf_transforms[0].udf_name == "sign"

    def test_udf_not_offered_for_categorical(self, table):
        config = RuleConfig(udfs=(("sign", _sign),))
        transforms = transform_rules(table.column("kind"), config)
        assert not any(isinstance(t, BinByUDF) for t in transforms)

    def test_udf_query_complies(self, table):
        query = VisQuery(
            chart=ChartType.BAR, x="delay", y="size",
            transform=BinByUDF("delay", "sign", _sign),
            aggregate=AggregateOp.AVG,
        )
        assert complies(query, table)

    def test_udf_on_categorical_does_not_comply(self, table):
        query = VisQuery(
            chart=ChartType.BAR, x="kind", y="size",
            transform=BinByUDF("kind", "sign", _sign),
            aggregate=AggregateOp.AVG,
        )
        assert not complies(query, table)


class TestUdfEnumeration:
    def test_rule_based_generates_udf_charts(self, table):
        config = EnumerationConfig(udfs=(("sign", _sign),))
        nodes = enumerate_rule_based(table, config)
        udf_nodes = [
            n for n in nodes if isinstance(n.query.transform, BinByUDF)
        ]
        assert udf_nodes
        sample = udf_nodes[0]
        assert set(sample.data.x_labels) <= {"early", "late"}

    def test_exhaustive_also_includes_udfs(self, table):
        with_udf = EnumerationConfig(orderings="none", udfs=(("sign", _sign),))
        without = EnumerationConfig(orderings="none")
        assert len(enumerate_exhaustive(table, with_udf)) > len(
            enumerate_exhaustive(table, without)
        )

    def test_udf_chart_executes_consistently(self, table):
        query = VisQuery(
            chart=ChartType.BAR, x="delay", y="size",
            transform=BinByUDF("delay", "sign", _sign),
            aggregate=AggregateOp.CNT,
        )
        data = execute(query, table)
        assert dict(zip(data.x_labels, data.y_values)) == {
            "early": 20.0, "late": 20.0,
        }

    def test_same_named_udfs_compare_equal(self):
        a = BinByUDF("delay", "sign", _sign)
        b = BinByUDF("delay", "sign", lambda v: "x")  # name governs identity
        assert a == b
        assert hash(a) == hash(b)
