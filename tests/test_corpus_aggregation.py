"""Unit tests for crowd rank aggregation (Borda / Copeland / Bradley-Terry)."""

import numpy as np
import pytest

from repro.corpus import (
    aggregate_comparisons,
    borda_scores,
    bradley_terry_scores,
    copeland_scores,
    grades_from_scores,
)
from repro.errors import ReproError


def _round_robin(strengths, games=8, seed=0):
    """Simulate comparisons under Bradley-Terry with given strengths."""
    rng = np.random.default_rng(seed)
    comparisons = []
    n = len(strengths)
    for i in range(n):
        for j in range(i + 1, n):
            p = strengths[i] / (strengths[i] + strengths[j])
            for _ in range(games):
                if rng.random() < p:
                    comparisons.append((i, j))
                else:
                    comparisons.append((j, i))
    return comparisons


class TestBorda:
    def test_clear_winner(self):
        comparisons = [(0, 1), (0, 2), (1, 2)]
        scores = borda_scores(comparisons, 3)
        assert scores[0] > scores[1] > scores[2]

    def test_unseen_items_score_zero(self):
        scores = borda_scores([(0, 1)], 4)
        assert scores[2] == scores[3] == 0.0

    def test_validation(self):
        with pytest.raises(ReproError):
            borda_scores([(0, 5)], 3)
        with pytest.raises(ReproError):
            borda_scores([(1, 1)], 3)


class TestCopeland:
    def test_majority_rule(self):
        # 1 beats 0 twice, 0 beats 1 once: 1 wins the pair.
        comparisons = [(1, 0), (1, 0), (0, 1)]
        scores = copeland_scores(comparisons, 2)
        assert scores[1] > scores[0]

    def test_tied_pair_contributes_nothing(self):
        scores = copeland_scores([(0, 1), (1, 0)], 2)
        assert scores[0] == scores[1]

    def test_normalised_range(self):
        comparisons = _round_robin([4.0, 2.0, 1.0], games=4)
        scores = copeland_scores(comparisons, 3)
        assert all(0.0 <= s <= 1.0 for s in scores)


class TestBradleyTerry:
    def test_recovers_strength_order(self):
        true = [8.0, 4.0, 2.0, 1.0, 0.5]
        comparisons = _round_robin(true, games=30)
        theta = bradley_terry_scores(comparisons, 5)
        assert list(np.argsort(-theta)) == [0, 1, 2, 3, 4]

    def test_strengths_roughly_proportional(self):
        true = [4.0, 1.0]
        comparisons = _round_robin(true, games=400, seed=1)
        theta = bradley_terry_scores(comparisons, 2)
        ratio = theta[0] / theta[1]
        assert 2.5 < ratio < 6.5  # true ratio 4, finite-sample noise

    def test_never_loses_item_converges(self):
        comparisons = [(0, 1)] * 10 + [(1, 2)] * 10
        theta = bradley_terry_scores(comparisons, 3)
        assert np.isfinite(theta).all()
        assert theta[0] > theta[1] > theta[2]


class TestDispatcherAndGrades:
    def test_unknown_method(self):
        with pytest.raises(ReproError):
            aggregate_comparisons([(0, 1)], 2, method="elo")

    @pytest.mark.parametrize("method", ["borda", "copeland", "bradley_terry"])
    def test_all_methods_agree_on_strong_signal(self, method):
        comparisons = _round_robin([10.0, 3.0, 1.0], games=40)
        scores = aggregate_comparisons(comparisons, 3, method)
        assert list(np.argsort(-scores)) == [0, 1, 2]

    def test_grades_quantised(self):
        scores = [0.9, 0.7, 0.5, 0.3, 0.1, 0.0]
        grades = grades_from_scores(scores, participants=[0, 1, 2, 3, 4])
        assert grades[0] == 4.0
        assert grades[5] == 0.0  # not a participant
        assert all(g in (0.0, 1.0, 2.0, 3.0, 4.0) for g in grades)

    def test_grades_empty_participants(self):
        assert grades_from_scores([0.5, 0.2], []) == [0.0, 0.0]


class TestOracleComparisonPath:
    def test_comparison_grades_correlate_with_direct_grades(self, flights_table):
        from repro.core import enumerate_rule_based
        from repro.corpus import PerceptionOracle

        oracle = PerceptionOracle()
        nodes = enumerate_rule_based(flights_table)
        direct = oracle.annotate(nodes)
        merged = oracle.annotate_via_comparisons(nodes)
        assert merged.labels == direct.labels
        good = [i for i, ok in enumerate(direct.labels) if ok]
        if len(good) >= 4:
            a = np.asarray([direct.relevance[i] for i in good])
            b = np.asarray([merged.relevance[i] for i in good])
            # Same grading scale, strongly correlated orders.
            assert np.corrcoef(a, b)[0, 1] > 0.4
