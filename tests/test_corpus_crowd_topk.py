"""Tests for crowdsourced top-k under noisy comparisons."""

import numpy as np
import pytest

from repro.corpus import crowd_top_k, majority_vote, noisy_max, oracle_comparator
from repro.errors import ReproError


def _perfect(scores):
    return lambda i, j: scores[i] > scores[j]


class TestMajorityVote:
    def test_deterministic_comparator_stops_early(self):
        compare = _perfect([0.0, 1.0])
        wins, asked = majority_vote(compare, 1, 0, rounds=5)
        assert wins
        assert asked == 3  # 3-0 decides a best-of-5 early

    def test_noisy_majority_beats_single_question(self):
        scores = [0.0, 0.1]
        flips = 0
        trials = 200
        for seed in range(trials):
            compare = oracle_comparator(scores, accuracy_scale=0.15, seed=seed)
            wins, _ = majority_vote(compare, 1, 0, rounds=9)
            flips += 0 if wins else 1
        single_flips = 0
        for seed in range(trials):
            compare = oracle_comparator(scores, accuracy_scale=0.15, seed=seed)
            single_flips += 0 if compare(1, 0) else 1
        assert flips < single_flips

    def test_rounds_validated(self):
        with pytest.raises(ReproError):
            majority_vote(_perfect([0, 1]), 0, 1, rounds=0)


class TestNoisyMax:
    def test_perfect_comparator_finds_max(self):
        scores = [0.3, 0.9, 0.1, 0.5, 0.7]
        winner, questions = noisy_max(range(5), _perfect(scores))
        assert winner == 1
        assert questions > 0

    def test_single_item(self):
        winner, questions = noisy_max([7], _perfect([0] * 8))
        assert winner == 7
        assert questions == 0

    def test_odd_field_gets_a_bye(self):
        scores = [0.1, 0.2, 0.9]
        winner, _ = noisy_max(range(3), _perfect(scores))
        assert winner == 2

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            noisy_max([], _perfect([]))

    def test_noisy_comparator_usually_right(self):
        scores = list(np.linspace(0, 1, 16))
        correct = 0
        for seed in range(30):
            compare = oracle_comparator(scores, accuracy_scale=0.08, seed=seed)
            winner, _ = noisy_max(range(16), compare, rounds=7)
            correct += winner == 15
        assert correct >= 24  # >= 80% success


class TestCrowdTopK:
    def test_perfect_comparator_exact(self):
        scores = [0.4, 0.9, 0.1, 0.7, 0.2, 0.6]
        top, questions = crowd_top_k(range(6), _perfect(scores), k=3)
        assert top == [1, 3, 5]
        assert questions > 0

    def test_k_zero(self):
        top, questions = crowd_top_k(range(4), _perfect([1, 2, 3, 4]), k=0)
        assert top == []
        assert questions == 0

    def test_k_exceeds_pool(self):
        top, _ = crowd_top_k(range(3), _perfect([3, 2, 1]), k=99)
        assert top == [0, 1, 2]

    def test_negative_k_rejected(self):
        with pytest.raises(ReproError):
            crowd_top_k(range(3), _perfect([1, 2, 3]), k=-1)

    def test_more_rounds_spend_more_questions(self):
        scores = list(np.linspace(0, 1, 12))
        compare = oracle_comparator(scores, accuracy_scale=0.1, seed=1)
        _, cheap = crowd_top_k(range(12), compare, k=2, rounds=1)
        compare = oracle_comparator(scores, accuracy_scale=0.1, seed=1)
        _, costly = crowd_top_k(range(12), compare, k=2, rounds=9)
        assert costly > cheap

    def test_recovers_oracle_top_charts(self, flights_table):
        """End-to-end: crowd top-k over the perception oracle's latent
        chart scores finds (mostly) the same charts as sorting them."""
        from repro.core import enumerate_rule_based
        from repro.corpus import PerceptionOracle

        oracle = PerceptionOracle()
        nodes = enumerate_rule_based(flights_table)
        interest = oracle.column_interest(nodes)
        scores = [oracle.consensus_score(n, interest) for n in nodes]
        compare = oracle_comparator(scores, accuracy_scale=0.03, seed=5)
        top, _ = crowd_top_k(range(len(nodes)), compare, k=5, rounds=7)
        true_top = sorted(range(len(nodes)), key=lambda i: -scores[i])[:10]
        overlap = len(set(top) & set(true_top))
        assert overlap >= 3
