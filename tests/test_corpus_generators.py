"""Unit tests for the synthetic corpus generators."""

import numpy as np
import pytest

from repro.corpus import TESTING_SPECS, TRAINING_SPECS, corpus_tables, make_table
from repro.corpus import testing_tables as make_testing_tables
from repro.corpus import training_tables as make_training_tables
from repro.dataset import ColumnType


class TestSpecs:
    def test_ten_testing_specs_match_table_four(self):
        assert len(TESTING_SPECS) == 10
        by_name = {s.name: s for s in TESTING_SPECS}
        assert by_name["FlyDelay"].rows == 99527
        assert by_name["Adult"].rows == 32561
        assert by_name["McDonald's Menu"].rows == 263

    def test_thirty_two_training_specs(self):
        assert len(TRAINING_SPECS) == 32

    def test_corpus_has_forty_two_tables(self):
        tables = corpus_tables(scale=0.01)
        assert len(tables) == 42

    def test_unique_names(self):
        names = [s.name for s in TESTING_SPECS + TRAINING_SPECS]
        assert len(names) == len(set(names))


class TestGeneratedTables:
    def test_column_counts_match_table_four(self):
        expected = {
            "Hollywood's Stories": 8,
            "Foreign Visitor Arrivals": 4,
            "McDonald's Menu": 23,
            "Happiness Rank": 12,
            "ZHVI Summary": 13,
            "NFL Player Statistics": 25,
            "Airbnb Summary": 9,
            "Top Baby Names in US": 6,
            "Adult": 14,
            "FlyDelay": 6,
        }
        for table in make_testing_tables(scale=0.01):
            assert table.num_columns == expected[table.name], table.name

    def test_scale_controls_row_count(self):
        small = make_table("FlyDelay", scale=0.001)
        large = make_table("FlyDelay", scale=0.01)
        assert small.num_rows < large.num_rows
        assert large.num_rows == pytest.approx(995, abs=2)

    def test_deterministic_given_seed(self):
        a = make_table("Adult", scale=0.01, seed=3)
        b = make_table("Adult", scale=0.01, seed=3)
        assert a.column_names == b.column_names
        assert list(a.column(a.column_names[0]).values) == list(
            b.column(b.column_names[0]).values
        )

    def test_seed_changes_values(self):
        a = make_table("Adult", scale=0.01, seed=1)
        b = make_table("Adult", scale=0.01, seed=2)
        num = a.columns_of_type(ColumnType.NUMERICAL)[0].name
        assert list(a.column(num).values) != list(b.column(num).values)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_table("No Such Dataset")

    def test_every_table_has_numeric_and_nonnumeric_columns(self):
        for table in corpus_tables(scale=0.01):
            counts = table.type_counts()
            assert counts[ColumnType.NUMERICAL] >= 1, table.name
            assert (
                counts[ColumnType.CATEGORICAL] + counts[ColumnType.TEMPORAL] >= 1
            ), table.name


class TestPlantedStructure:
    def test_flydelay_delays_are_correlated(self):
        from repro.core import correlation_strength

        table = make_table("FlyDelay", scale=0.01)
        dep = table.column("departure_delay").values
        arr = table.column("arrival_delay").values
        assert correlation_strength(dep, arr) > 0.7

    def test_flydelay_hourly_seasonality(self):
        # Late-afternoon peak (the paper's ~19:00 observation).
        table = make_table("FlyDelay", scale=0.05)
        hours = np.asarray([t.hour for t in table.column("scheduled").as_datetimes()])
        delays = table.column("departure_delay").values
        evening = delays[(hours >= 17) & (hours <= 21)].mean()
        morning = delays[(hours >= 1) & (hours <= 5)].mean()
        assert evening > morning + 3.0

    def test_menu_calories_track_fat(self):
        from repro.core import correlation_strength

        table = make_table("McDonald's Menu", scale=0.5)
        # calories_from_fat is 9 * fat by construction: near-perfect.
        assert correlation_strength(
            table.column("total_fat_g").values,
            table.column("calories_from_fat").values,
        ) > 0.95
        # total calories are multi-factor, so only moderately correlated.
        assert correlation_strength(
            table.column("total_fat_g").values, table.column("calories").values
        ) > 0.35

    def test_training_variants_differ_in_size(self):
        tables = make_training_tables(scale=0.05)
        base = next(t for t in tables if t.name == "Monthly Sales")
        variant = next(t for t in tables if t.name == "Monthly Sales #2")
        assert base.num_rows != variant.num_rows
