"""Unit tests for the perception oracle and corpus assembly."""

import numpy as np
import pytest

from repro.core import enumerate_rule_based
from repro.core.enumeration import EnumerationConfig, enumerate_candidates
from repro.corpus import (
    CorpusConfig,
    PerceptionOracle,
    annotate_table,
    build_corpus,
    build_training_examples,
    corpus_statistics,
    make_table,
)
from repro.language import AggregateOp, ChartType


@pytest.fixture(scope="module")
def fly_nodes():
    table = make_table("FlyDelay", scale=0.003)
    return enumerate_candidates(
        table, "exhaustive", EnumerationConfig(orderings="none")
    )


class TestConsensusScore:
    def test_scores_in_unit_interval(self, fly_nodes):
        oracle = PerceptionOracle()
        interest = oracle.column_interest(fly_nodes)
        for node in fly_nodes[:200]:
            assert 0.0 <= oracle.consensus_score(node, interest) <= 1.0

    def test_rule_violations_score_low(self, fly_nodes):
        oracle = PerceptionOracle()
        # A pie over a temporal x violates the visualization rules.
        bad = [
            n for n in fly_nodes
            if n.chart is ChartType.PIE and n.query.x == "scheduled"
            and n.query.transform is not None
        ]
        assert bad
        for node in bad[:10]:
            assert oracle.consensus_score(node) < 0.2

    def test_avg_pie_scores_lower_than_sum_pie(self, fly_nodes):
        oracle = PerceptionOracle()
        pies = {
            (n.query.x, n.query.aggregate): n
            for n in fly_nodes
            if n.chart is ChartType.PIE and n.query.x == "carrier"
        }
        avg = pies.get(("carrier", AggregateOp.AVG))
        s = pies.get(("carrier", AggregateOp.SUM))
        assert avg is not None and s is not None
        assert oracle.consensus_score(avg) < oracle.consensus_score(s)


class TestAnnotation:
    def test_deterministic(self, fly_nodes):
        a = PerceptionOracle(seed=5).annotate(fly_nodes)
        b = PerceptionOracle(seed=5).annotate(fly_nodes)
        assert a.labels == b.labels
        assert a.relevance == b.relevance

    def test_seed_changes_borderline_labels(self, fly_nodes):
        a = PerceptionOracle(seed=1).annotate(fly_nodes)
        b = PerceptionOracle(seed=2).annotate(fly_nodes)
        # Most labels agree (the oracle backbone is shared) ...
        agreement = np.mean(np.asarray(a.labels) == np.asarray(b.labels))
        assert agreement > 0.9

    def test_good_rate_in_paper_ballpark(self, fly_nodes):
        annotation = PerceptionOracle().annotate(fly_nodes)
        rate = annotation.num_good / len(fly_nodes)
        assert 0.02 < rate < 0.35  # paper: ~7.5% overall

    def test_relevance_grades(self, fly_nodes):
        annotation = PerceptionOracle().annotate(fly_nodes)
        for label, grade in zip(annotation.labels, annotation.relevance):
            if label:
                assert grade in (1.0, 2.0, 3.0, 4.0)
            else:
                assert grade == 0.0

    def test_empty_nodes(self):
        annotation = PerceptionOracle().annotate([])
        assert annotation.labels == []

    def test_pairwise_comparisons_are_good_pairs(self, fly_nodes):
        oracle = PerceptionOracle()
        annotation = oracle.annotate(fly_nodes)
        pairs = oracle.pairwise_comparisons(fly_nodes, max_pairs=50)
        good = {i for i, l in enumerate(annotation.labels) if l}
        assert len(pairs) <= 50
        for i, j in pairs:
            assert i in good and j in good


class TestCorpusAssembly:
    def test_annotate_table_caps_nodes(self):
        table = make_table("FlyDelay", scale=0.003)
        annotated = annotate_table(
            table, PerceptionOracle(), CorpusConfig(max_nodes_per_table=50)
        )
        assert len(annotated.nodes) <= 50 or annotated.annotation.num_good > 50
        assert len(annotated.annotation.labels) == len(annotated.nodes)

    def test_cnt_dedup_removes_two_column_counts(self):
        table = make_table("FlyDelay", scale=0.003)
        annotated = annotate_table(
            table, PerceptionOracle(), CorpusConfig(max_nodes_per_table=None)
        )
        for node in annotated.nodes:
            if node.query.aggregate is AggregateOp.CNT:
                assert node.query.x == node.query.y

    def test_training_examples_aligned(self):
        tables = [make_table("Monthly Sales", scale=0.1)]
        corpus = build_corpus(tables, config=CorpusConfig(max_nodes_per_table=60))
        examples = build_training_examples(corpus)
        assert len(examples) == 1
        example = examples[0]
        assert len(example.nodes) == len(example.labels) == len(example.relevance)

    def test_corpus_statistics_shape(self):
        tables = [make_table("Monthly Sales", scale=0.1),
                  make_table("City Weather", scale=0.05)]
        corpus = build_corpus(tables, config=CorpusConfig(max_nodes_per_table=60))
        stats = corpus_statistics(corpus)
        assert stats["num_datasets"] == 2
        assert stats["good_charts"] + stats["bad_charts"] == sum(
            len(item.nodes) for item in corpus
        )
        assert stats["comparisons"] >= 0
        assert len(stats["tables"]) == 2
