"""Unit tests for the D1-D9 use cases and coverage measurement."""

import pytest

from repro.corpus import USECASE_SPECS, PerceptionOracle, chart_key, coverage_k, use_cases
from repro.corpus.usecases import UseCase


@pytest.fixture(scope="module")
def cases():
    return use_cases(scale=0.05)


class TestUseCases:
    def test_nine_cases(self, cases):
        assert len(cases) == 9
        assert [c.name for c in cases] == [spec[0] for spec in USECASE_SPECS]

    def test_published_counts_match_specs(self, cases):
        for case, spec in zip(cases, USECASE_SPECS):
            assert case.num_published == spec[3]

    def test_published_charts_are_distinct(self, cases):
        for case in cases:
            assert len(set(case.published)) == len(case.published)

    def test_deterministic(self):
        a = use_cases(scale=0.05, seed=3)
        b = use_cases(scale=0.05, seed=3)
        assert [c.published for c in a] == [c.published for c in b]

    def test_published_charts_are_enumerable(self, cases):
        """Every published chart must exist in the rule-based space of
        its table — otherwise coverage could never reach it."""
        from repro.core.enumeration import EnumerationConfig, enumerate_candidates

        for case in cases[:3]:
            nodes = enumerate_candidates(
                case.table, "rules", EnumerationConfig(orderings="canonical")
            )
            keys = {chart_key(node) for node in nodes}
            for published in case.published:
                assert published in keys


class TestCoverage:
    def test_zero_published_covered_at_zero(self, cases):
        empty = UseCase(name="x", table=cases[0].table, published=[])
        assert coverage_k(empty, []) == 0

    def test_coverage_found(self, cases):
        from repro.core.enumeration import EnumerationConfig, enumerate_candidates

        case = cases[0]
        nodes = enumerate_candidates(
            case.table, "rules", EnumerationConfig(orderings="canonical")
        )
        # A ranking that begins with exactly the published charts covers
        # them at k = num_published.
        by_key = {chart_key(n): n for n in nodes}
        front = [by_key[k] for k in case.published]
        rest = [n for n in nodes if chart_key(n) not in set(case.published)]
        assert coverage_k(case, front + rest) == case.num_published

    def test_uncovered_returns_none(self, cases):
        case = cases[0]
        assert coverage_k(case, []) is None

    def test_order_irrelevant_fields_ignored(self, cases):
        """chart_key ignores ORDER BY, so the same chart sorted
        differently still covers."""
        from repro.core.enumeration import EnumerationConfig, enumerate_candidates
        import dataclasses

        case = cases[0]
        nodes = enumerate_candidates(
            case.table, "rules", EnumerationConfig(orderings="canonical")
        )
        node = nodes[0]
        reordered = dataclasses.replace(node.query, order=None)
        assert chart_key(node) == (
            reordered.chart, reordered.x, reordered.y,
            reordered.transform, reordered.aggregate,
        )
