"""Tests for the heterogeneous worker pool and quality estimation."""

import numpy as np
import pytest

from repro.corpus import (
    WorkerPool,
    aggregate_comparisons,
    estimate_worker_quality,
    weighted_merge,
)
from repro.errors import ReproError


def _all_pairs(n):
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


@pytest.fixture
def setting():
    scores = list(np.linspace(0.1, 0.9, 8))
    # 6 diligent workers, 2 spammers.
    accuracies = [0.92, 0.9, 0.88, 0.85, 0.9, 0.87, 0.5, 0.5]
    pool = WorkerPool(accuracies, resolution=0.02, seed=3)
    judgements = pool.collect(scores, _all_pairs(8) * 4, judgements_per_pair=5)
    return scores, accuracies, pool, judgements


class TestWorkerPool:
    def test_judgement_count(self, setting):
        _, _, _, judgements = setting
        assert len(judgements) == len(_all_pairs(8)) * 4 * 5

    def test_perfect_worker_always_right_on_clear_gaps(self):
        pool = WorkerPool([1.0], resolution=0.001, seed=0)
        assert all(pool.judge(0, 0.9, 0.1) for _ in range(50))

    def test_spammer_near_coin_flip(self):
        pool = WorkerPool([0.5], seed=1)
        answers = [pool.judge(0, 0.9, 0.1) for _ in range(400)]
        assert 0.35 < np.mean(answers) < 0.65

    def test_near_ties_are_hard_for_everyone(self):
        pool = WorkerPool([0.95], resolution=0.2, seed=2)
        answers = [pool.judge(0, 0.51, 0.50) for _ in range(400)]
        # Effective accuracy interpolates toward 0.5 on tiny gaps.
        assert 0.35 < np.mean(answers) < 0.7

    def test_accuracy_validated(self):
        with pytest.raises(ReproError):
            WorkerPool([1.2])


class TestQualityEstimation:
    def test_spammers_rank_below_diligent_workers(self, setting):
        _, accuracies, _, judgements = setting
        quality = estimate_worker_quality(judgements, len(accuracies))
        diligent = quality[:6].mean()
        spammers = quality[6:].mean()
        assert diligent > spammers + 0.1

    def test_quality_in_unit_interval(self, setting):
        _, accuracies, _, judgements = setting
        quality = estimate_worker_quality(judgements, len(accuracies))
        assert ((0.0 <= quality) & (quality <= 1.0)).all()

    def test_needs_workers(self):
        with pytest.raises(ReproError):
            estimate_worker_quality([], 0)


class TestWeightedMerge:
    def test_merged_order_recovers_truth(self, setting):
        scores, accuracies, _, judgements = setting
        winners = weighted_merge(judgements, len(accuracies))
        merged = aggregate_comparisons(winners, len(scores), "borda")
        recovered = list(np.argsort(-merged))
        true_order = list(np.argsort(-np.asarray(scores)))
        # The top and bottom items must be placed correctly.
        assert recovered[0] == true_order[0]
        assert recovered[-1] == true_order[-1]

    def test_weighting_beats_unweighted_with_many_spammers(self):
        scores = list(np.linspace(0, 1, 6))
        accuracies = [0.95, 0.95, 0.5, 0.5, 0.5, 0.52, 0.48]
        pool = WorkerPool(accuracies, resolution=0.02, seed=9)
        judgements = pool.collect(scores, _all_pairs(6) * 10, judgements_per_pair=5)

        quality = estimate_worker_quality(judgements, len(accuracies))
        weighted = weighted_merge(judgements, len(accuracies), quality)
        unweighted = weighted_merge(
            judgements, len(accuracies), np.full(len(accuracies), 0.7)
        )

        def errors(winners):
            return sum(1 for a, b in winners if scores[a] < scores[b])

        assert errors(weighted) <= errors(unweighted)
