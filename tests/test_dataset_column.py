"""Unit tests for repro.dataset.column."""

import datetime as dt

import numpy as np
import pytest

from repro.dataset import EPOCH, Column, ColumnType
from repro.errors import DatasetError


class TestColumnType:
    def test_values_match_paper_abbreviations(self):
        assert ColumnType.CATEGORICAL.value == "Cat"
        assert ColumnType.NUMERICAL.value == "Num"
        assert ColumnType.TEMPORAL.value == "Tem"

    def test_groupable(self):
        assert ColumnType.CATEGORICAL.is_groupable
        assert ColumnType.TEMPORAL.is_groupable
        assert not ColumnType.NUMERICAL.is_groupable

    def test_binnable(self):
        assert ColumnType.NUMERICAL.is_binnable
        assert ColumnType.TEMPORAL.is_binnable
        assert not ColumnType.CATEGORICAL.is_binnable

    def test_sortable_on_x(self):
        assert ColumnType.NUMERICAL.is_sortable_on_x
        assert ColumnType.TEMPORAL.is_sortable_on_x
        assert not ColumnType.CATEGORICAL.is_sortable_on_x


class TestNumericalColumn:
    def test_basic_stats(self):
        col = Column("v", ColumnType.NUMERICAL, [3, 1, 2, 2, 3])
        assert col.num_tuples == 5
        assert col.num_distinct == 3
        assert col.unique_ratio == pytest.approx(0.6)
        assert col.min() == 1.0
        assert col.max() == 3.0

    def test_rejects_non_numeric(self):
        with pytest.raises(DatasetError):
            Column("v", ColumnType.NUMERICAL, ["x", "y"])

    def test_empty_column(self):
        col = Column("v", ColumnType.NUMERICAL, [])
        assert col.num_tuples == 0
        assert col.unique_ratio == 0.0
        assert col.min() is None
        assert col.max() is None

    def test_take_selects_rows(self):
        col = Column("v", ColumnType.NUMERICAL, [10, 20, 30])
        sub = col.take([2, 0])
        assert list(sub.values) == [30.0, 10.0]
        assert sub.name == "v"

    def test_renamed_shares_values(self):
        col = Column("v", ColumnType.NUMERICAL, [1, 2])
        other = col.renamed("w")
        assert other.name == "w"
        assert other.values is col.values


class TestCategoricalColumn:
    def test_values_coerced_to_str(self):
        col = Column("c", ColumnType.CATEGORICAL, [1, "a", 2.5])
        assert list(col.values) == ["1", "a", "2.5"]

    def test_no_min_max(self):
        col = Column("c", ColumnType.CATEGORICAL, ["a", "b"])
        assert col.min() is None
        assert col.max() is None

    def test_distinct_preserves_first_appearance_order(self):
        col = Column("c", ColumnType.CATEGORICAL, ["b", "a", "b", "c", "a"])
        assert list(col.distinct_values()) == ["b", "a", "c"]


class TestTemporalColumn:
    def test_roundtrip_datetimes(self):
        stamps = [dt.datetime(2015, 1, 1, 12, 30), dt.datetime(2016, 6, 2)]
        col = Column("t", ColumnType.TEMPORAL, stamps)
        assert col.as_datetimes() == stamps

    def test_dates_accepted(self):
        col = Column("t", ColumnType.TEMPORAL, [dt.date(2020, 3, 4)])
        assert col.as_datetimes() == [dt.datetime(2020, 3, 4)]

    def test_numeric_seconds_accepted(self):
        col = Column("t", ColumnType.TEMPORAL, [0, 86400])
        assert col.as_datetimes() == [EPOCH, EPOCH + dt.timedelta(days=1)]

    def test_rejects_strings(self):
        with pytest.raises(DatasetError):
            Column("t", ColumnType.TEMPORAL, ["2015-01-01"])

    def test_min_max_are_seconds(self):
        col = Column("t", ColumnType.TEMPORAL, [dt.datetime(1970, 1, 2)])
        assert col.min() == pytest.approx(86400.0)

    def test_as_datetimes_requires_temporal(self):
        col = Column("v", ColumnType.NUMERICAL, [1.0])
        with pytest.raises(DatasetError):
            col.as_datetimes()
