"""Unit tests for repro.dataset.inference (type detection)."""

import datetime as dt

import pytest

from repro.dataset import ColumnType, build_column, infer_type, parse_temporal


class TestParseTemporal:
    @pytest.mark.parametrize(
        "text",
        [
            "2015-01-03",
            "2015-01-03 14:30:00",
            "2015/01/03",
            "01/03/2015",
            "14:30",
            "Jan 2015",
        ],
    )
    def test_accepts_common_formats(self, text):
        assert parse_temporal(text) is not None

    def test_paper_table1_format(self):
        # "01-Jan 00:05" from the paper's Table I excerpt.
        parsed = parse_temporal("01-Jan 00:05")
        assert parsed is not None
        assert (parsed.day, parsed.month, parsed.hour, parsed.minute) == (1, 1, 0, 5)

    def test_year_integers(self):
        assert parse_temporal(2015) == dt.datetime(2015, 1, 1)
        assert parse_temporal(1799) is None

    def test_rejects_plain_numbers_and_words(self):
        assert parse_temporal("123.45") is None
        assert parse_temporal("carrier") is None
        assert parse_temporal(None) is None


class TestInferType:
    def test_numeric_strings(self):
        assert infer_type(["1", "2.5", "-3"]) is ColumnType.NUMERICAL

    def test_thousands_separators(self):
        assert infer_type(["1,234", "5,678"]) is ColumnType.NUMERICAL

    def test_date_strings(self):
        assert infer_type(["2015-01-01", "2015-02-01"]) is ColumnType.TEMPORAL

    def test_year_column_is_temporal(self):
        assert infer_type([2010, 2011, 2012]) is ColumnType.TEMPORAL

    def test_measurements_not_temporal(self):
        # Plain measurements that happen to fall in the year range but
        # are floats with decimals must stay numerical.
        assert infer_type([1850.5, 2010.2, 1999.9]) is ColumnType.NUMERICAL

    def test_categorical_fallback(self):
        assert infer_type(["UA", "AA", "MQ"]) is ColumnType.CATEGORICAL

    def test_mixed_mostly_numeric_with_stray_cell(self):
        values = ["1"] * 98 + ["n/a", ""]
        assert infer_type(values) is ColumnType.NUMERICAL

    def test_empty_defaults_categorical(self):
        assert infer_type([]) is ColumnType.CATEGORICAL
        assert infer_type([None, ""]) is ColumnType.CATEGORICAL

    def test_datetimes(self):
        assert infer_type([dt.datetime(2020, 1, 1)]) is ColumnType.TEMPORAL


class TestBuildColumn:
    def test_infers_when_type_omitted(self):
        col = build_column("v", ["1", "2"])
        assert col.ctype is ColumnType.NUMERICAL
        assert list(col.values) == [1.0, 2.0]

    def test_type_pin_overrides_inference(self):
        col = build_column("v", ["1", "2"], ColumnType.CATEGORICAL)
        assert col.ctype is ColumnType.CATEGORICAL
        assert list(col.values) == ["1", "2"]

    def test_unparseable_numeric_cells_fall_back_to_zero(self):
        col = build_column("v", ["1", "oops"], ColumnType.NUMERICAL)
        assert list(col.values) == [1.0, 0.0]

    def test_temporal_strings_parsed(self):
        col = build_column("t", ["2015-03-01", "2015-04-01"])
        assert col.ctype is ColumnType.TEMPORAL
        stamps = col.as_datetimes()
        assert stamps[0].month == 3 and stamps[1].month == 4

    def test_none_values_become_empty_strings(self):
        col = build_column("c", ["a", None], ColumnType.CATEGORICAL)
        assert list(col.values) == ["a", ""]
