"""Unit tests for CSV IO round-trips."""

import datetime as dt

import pytest

from repro.dataset import ColumnType, Table, read_csv, write_csv
from repro.errors import DatasetError


def _table():
    return Table.from_dict(
        "sample",
        {
            "city": ["a", "b"],
            "value": [1.5, 2.0],
            "count": [3, 4],
            "when": [dt.datetime(2020, 1, 1, 9, 30), dt.datetime(2020, 2, 2)],
        },
    )


def test_roundtrip_preserves_schema_and_values(tmp_path):
    path = tmp_path / "sample.csv"
    write_csv(_table(), path)
    loaded = read_csv(path)
    assert loaded.name == "sample"
    assert loaded.column("city").ctype is ColumnType.CATEGORICAL
    assert loaded.column("value").ctype is ColumnType.NUMERICAL
    assert loaded.column("when").ctype is ColumnType.TEMPORAL
    assert list(loaded.column("value").values) == [1.5, 2.0]
    assert loaded.column("when").as_datetimes()[0] == dt.datetime(2020, 1, 1, 9, 30)


def test_integer_cells_written_without_decimal(tmp_path):
    path = tmp_path / "ints.csv"
    write_csv(_table(), path)
    text = path.read_text()
    assert ",3," in text or ",3\n" in text  # not "3.0"


def test_read_csv_type_pinning(tmp_path):
    path = tmp_path / "pin.csv"
    path.write_text("code\n1\n2\n")
    loaded = read_csv(path, types={"code": ColumnType.CATEGORICAL})
    assert loaded.column("code").ctype is ColumnType.CATEGORICAL


def test_read_csv_custom_name_and_delimiter(tmp_path):
    path = tmp_path / "semi.csv"
    path.write_text("a;b\n1;x\n")
    loaded = read_csv(path, name="renamed", delimiter=";")
    assert loaded.name == "renamed"
    assert loaded.num_columns == 2


def test_read_empty_csv_raises(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(DatasetError):
        read_csv(path)
