"""Streaming-sketch properties: exactness on materialisable streams,
bounded error past the spill points, and chunk-boundary invariance."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import ColumnType, build_column, infer_type
from repro.dataset.sketches import (
    ColumnSketch,
    DistinctCounter,
    ReservoirSample,
    StreamingHistogram,
    StreamingMoments,
    TableSketch,
    TypeVotes,
)

# Cells that exercise every inference branch: numbers, year-like ints,
# dates, plain text, and the null shapes (_non_null drops).
cells = st.one_of(
    st.none(),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.integers(min_value=-5000, max_value=5000),
    st.integers(min_value=1800, max_value=2200).map(str),
    st.sampled_from(["2021-03-01", "2021-04-15", "1999-12-31"]),
    st.sampled_from(["alpha", "beta", "gamma", "", "  "]),
    st.floats(min_value=-100, max_value=100, allow_nan=False).map(
        lambda v: f"{v:.3f}"
    ),
)
cell_lists = st.lists(cells, min_size=0, max_size=120)

float_chunks = st.lists(
    st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=0,
        max_size=50,
    ),
    min_size=0,
    max_size=6,
)


class TestTypeVotes:
    @given(cell_lists)
    @settings(max_examples=100, deadline=None)
    def test_decide_matches_infer_type(self, values):
        sketch = ColumnSketch("c")
        sketch.add_chunk(values)
        assert sketch.votes.decide() is infer_type(values)

    def test_empty_stream_is_categorical(self):
        assert TypeVotes().decide() is ColumnType.CATEGORICAL


class TestStreamingMoments:
    @given(float_chunks)
    @settings(max_examples=80, deadline=None)
    def test_matches_numpy_regardless_of_chunking(self, chunks):
        moments = StreamingMoments()
        for chunk in chunks:
            moments.add_chunk(np.asarray(chunk, dtype=np.float64))
        flat = np.asarray(
            [v for chunk in chunks for v in chunk], dtype=np.float64
        )
        assert moments.count == len(flat)
        if len(flat) == 0:
            assert moments.min is None and moments.max is None
            return
        assert moments.min == float(flat.min())
        assert moments.max == float(flat.max())
        assert np.isclose(moments.mean, flat.mean(), rtol=1e-9, atol=1e-6)
        assert np.isclose(
            moments.variance, flat.var(), rtol=1e-6, atol=1e-6
        )


class TestDistinctCounter:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=500), min_size=0, max_size=400
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_below_spill(self, values):
        counter = DistinctCounter()
        arr = np.asarray(values, dtype=np.float64)
        counter.add_floats(arr)
        assert counter.exact
        assert counter.estimate() == len(set(values))

    def test_string_and_float_streams_are_independent(self):
        counter = DistinctCounter()
        counter.add_strings(["a", "b", "a"])
        counter.add_strings(["b", "c"])
        assert counter.estimate() == 3

    def test_kmv_estimate_bounded_error(self):
        # Push far past the spill threshold: the KMV estimate must land
        # within a few sigma of 1/sqrt(k) relative error.
        counter = DistinctCounter(spill_limit=1000, k=1024)
        truth = 200_000
        values = np.arange(truth, dtype=np.float64)
        for start in range(0, truth, 10_000):
            counter.add_floats(values[start : start + 10_000])
        assert not counter.exact
        estimate = counter.estimate()
        assert abs(estimate - truth) / truth < 0.15

    def test_negative_zero_folds_into_zero(self):
        counter = DistinctCounter()
        counter.add_floats(np.asarray([0.0, -0.0], dtype=np.float64))
        assert counter.estimate() == 1


class TestStreamingHistogram:
    @given(
        st.lists(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_quantiles_within_range_and_monotone(self, values):
        hist = StreamingHistogram(max_bins=32)
        arr = np.asarray(values, dtype=np.float64)
        hist.add_chunk(arr[: len(arr) // 2])
        hist.add_chunk(arr[len(arr) // 2 :])
        qs = hist.quantiles((0.25, 0.5, 0.75))
        assert all(arr.min() <= q <= arr.max() for q in qs)
        assert qs[0] <= qs[1] <= qs[2]

    def test_empty_quantile_is_none(self):
        assert StreamingHistogram().quantile(0.5) is None


class TestReservoirSample:
    def test_sample_is_stream_while_under_capacity(self):
        sample = ReservoirSample(capacity=100, seed=1)
        rows = [(i,) for i in range(60)]
        for row in rows:
            sample.offer(row)
        assert sample.rows == rows
        assert not sample.saturated

    @given(st.integers(min_value=0, max_value=7))
    @settings(max_examples=20, deadline=None)
    def test_chunk_boundaries_do_not_change_the_sample(self, seed):
        rows = [(i, f"r{i}") for i in range(997)]
        one = ReservoirSample(capacity=50, seed=seed)
        for row in rows:
            one.offer(row)
        two = ReservoirSample(capacity=50, seed=seed)
        for start in range(0, len(rows), 13):
            for row in rows[start : start + 13]:
                two.offer(row)
        assert one.rows == two.rows
        assert one.saturated and two.saturated


class TestTableSketchExactness:
    @given(cell_lists, cell_lists)
    @settings(max_examples=50, deadline=None)
    def test_stats_exact_on_materialisable_streams(self, left, right):
        # While the reservoir holds the full stream, the profile must
        # agree exactly with the built in-memory columns.
        width = max(len(left), len(right))
        left = left + [None] * (width - len(left))
        right = right + [None] * (width - len(right))
        rows = list(zip(left, right))
        sketch = TableSketch(["a", "b"], sample_capacity=max(width, 1))
        for start in range(0, width, 17):
            sketch.add_rows(rows[start : start + 17])
        profile = sketch.finish()
        assert profile.sample_exact
        assert profile.rows == width
        for name, values in (("a", left), ("b", right)):
            stats = profile.stats_for(name)
            column = build_column(name, values)
            assert stats.ctype is column.ctype
            assert stats.num_tuples == width
            if column.ctype is ColumnType.CATEGORICAL:
                assert stats.num_distinct == len(set(column.values))
                assert stats.min_value is None and stats.max_value is None
            else:
                assert stats.num_distinct == len(np.unique(column.values))
                if width:
                    assert stats.min_value == float(column.values.min())
                    assert stats.max_value == float(column.values.max())

    def test_sample_table_pins_full_stream_types(self):
        # 98 numeric rows then 2 text rows: the full stream votes
        # NUMERICAL, and a sample that only caught text rows must still
        # build a NUMERICAL column.
        rows = [(str(i),) for i in range(98)] + [("x",)] * 2
        sketch = TableSketch(["v"], sample_capacity=200)
        sketch.add_rows(rows)
        table = sketch.sample_table("t")
        assert table.columns[0].ctype is ColumnType.NUMERICAL

    def test_profile_digest_tracks_full_stream_not_sample(self):
        # Two streams with identical samples but different tails must
        # produce different digests (the cache-scope separator).
        first = TableSketch(["v"], sample_capacity=5, seed=3)
        second = TableSketch(["v"], sample_capacity=5, seed=3)
        shared = [(i,) for i in range(5)]
        first.add_rows(shared + [(100,)] * 50)
        second.add_rows(shared + [(999,)] * 50)
        if first.reservoir.rows == second.reservoir.rows:
            assert first.finish().digest() != second.finish().digest()
