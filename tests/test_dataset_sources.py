"""Multi-backend ingestion: byte-identity across sources, NA-token
unification, cache scoping, auto-mode demotion, and the observability
contract (request-event source fields, result provenance, metrics)."""

import json
import pickle
import sqlite3

import pytest

from repro.core import DeepEye, select_top_k
from repro.core.explain import provenance_report
from repro.dataset import read_csv
from repro.dataset.sources import (
    NA_TOKENS,
    CsvSource,
    JsonlSource,
    SqliteSource,
    from_source,
    normalize_cell,
    resolve_source,
)
from repro.errors import DatasetError
from repro.obs import (
    EventLog,
    MetricsRegistry,
    classify_drift,
    entry_from_result,
)

# One logical table, 60 rows: a categorical, a temporal, and two
# numeric columns, with NA tokens and blanks sprinkled in.  Every cell
# is a string so all three backends see identical raw values (native
# ints would legitimately infer differently than their str() forms).
ROWS = []
for i in range(60):
    ROWS.append(
        (
            ["north", "south", "east", "NA"][i % 4],
            f"2021-{(i % 12) + 1:02d}-15",
            "null" if i % 13 == 0 else f"{(i * 7) % 30}.5",
            "" if i % 11 == 0 else str((i * 3) % 50),
        )
    )
HEADER = ["region", "month", "sales", "units"]


def _write_csv(path):
    with path.open("w") as handle:
        handle.write(",".join(HEADER) + "\n")
        for row in ROWS:
            handle.write(",".join(row) + "\n")
    return path


def _write_jsonl(path):
    with path.open("w") as handle:
        for row in ROWS:
            handle.write(json.dumps(dict(zip(HEADER, row))) + "\n")
    return path


def _write_sqlite(path, table="demo"):
    conn = sqlite3.connect(str(path))
    conn.execute(
        f"CREATE TABLE {table} "
        "(region TEXT, month TEXT, sales TEXT, units TEXT)"
    )
    conn.executemany(
        f"INSERT INTO {table} VALUES (?, ?, ?, ?)", ROWS
    )
    conn.commit()
    conn.close()
    return path


@pytest.fixture
def backends(tmp_path):
    return {
        "csv": _write_csv(tmp_path / "demo.csv"),
        "jsonl": _write_jsonl(tmp_path / "demo.jsonl"),
        "sqlite": _write_sqlite(tmp_path / "demo.db"),
    }


def _entry(table, k=6):
    result = select_top_k(table, k=k, provenance=True)
    return entry_from_result(table.name, table.fingerprint(), result), result


class TestByteIdentity:
    def test_all_backends_fingerprint_identically(self, backends):
        tables = {
            "csv": from_source(CsvSource(backends["csv"], name="demo")),
            "jsonl": from_source(JsonlSource(backends["jsonl"], name="demo")),
            "sqlite": from_source(
                SqliteSource(backends["sqlite"], table="demo")
            ),
        }
        fps = {kind: t.fingerprint() for kind, t in tables.items()}
        assert len(set(fps.values())) == 1, fps

    def test_topk_identical_across_backends_and_modes(self, backends):
        base_table = read_csv(backends["csv"], name="demo")
        base, _ = _entry(base_table)
        variants = {
            "jsonl": from_source(JsonlSource(backends["jsonl"], name="demo")),
            "sqlite_push": from_source(
                SqliteSource(backends["sqlite"], table="demo"), pushdown=True
            ),
            "sqlite_nopush": from_source(
                SqliteSource(backends["sqlite"], table="demo"), pushdown=False
            ),
            # Capacity >= rows: the streaming build must be exact.
            "stream_exact": from_source(
                CsvSource(backends["csv"], name="demo"), materialize=False
            ),
        }
        for label, table in variants.items():
            entry, _ = _entry(table)
            report = classify_drift(base, entry)
            assert report["kind"] == "identical", (label, report)

    def test_pushdown_actually_served(self, backends):
        table = from_source(SqliteSource(backends["sqlite"], table="demo"))
        select_top_k(table, k=6)
        stats = table.pushdown_provider.stats()
        assert stats["served"] > 0, stats


class TestReadCsvDelegation:
    def test_read_csv_equals_from_source(self, backends):
        via_reader = read_csv(backends["csv"], name="demo")
        via_source = from_source(
            CsvSource(backends["csv"], name="demo"), materialize=True
        )
        assert via_reader.fingerprint() == via_source.fingerprint()
        # read_csv is an ingestion entry point too, so it records where
        # the table came from.
        assert via_reader.source_info["kind"] == "csv"

    def test_empty_csv_error_preserved(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(DatasetError, match="empty CSV file"):
            read_csv(empty)

    def test_ragged_row_error_preserved(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n3\n")
        with pytest.raises(DatasetError, match="row 1 has 1 cells"):
            read_csv(bad)


class TestNaUnification:
    def test_tokens_normalise_case_insensitively(self):
        for token in ["NA", "na", " N/A ", "NaN", "NULL", "None", "", "  "]:
            assert normalize_cell(token) is None
        assert normalize_cell("nah") == "nah"
        assert normalize_cell(0) == 0

    def test_na_tokens_are_dropped_before_inference(self, tmp_path):
        # A 95%-numeric column polluted with NA tokens stays NUMERICAL
        # because the tokens become nulls before the type vote.
        path = tmp_path / "na.csv"
        cells = [str(i) for i in range(40)] + ["NA", "n/a"]
        path.write_text("v\n" + "\n".join(cells) + "\n")
        table = read_csv(path)
        assert table.column("v").ctype.value == "Num"

    def test_token_table_is_shared(self):
        assert "n/a" in NA_TOKENS and "null" in NA_TOKENS


class TestJsonlSchema:
    def test_unknown_key_is_an_error(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"a": 1}\n{"a": 2, "b": 3}\n')
        with pytest.raises(DatasetError, match="not in the first record"):
            from_source(JsonlSource(path))

    def test_missing_keys_become_nulls(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"a": "u", "b": "v"}\n{"a": "w"}\n')
        table = from_source(JsonlSource(path))
        assert table.num_rows == 2
        assert table.column("b").values[1] == ""

    def test_empty_jsonl_is_an_error(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("\n\n")
        with pytest.raises(DatasetError, match="empty JSONL"):
            from_source(JsonlSource(path))


class TestCacheScoping:
    def test_plain_csv_table_has_no_scope(self, backends):
        table = from_source(CsvSource(backends["csv"], name="demo"))
        assert table.cache_scope is None
        assert table.cache_fingerprint() == table.fingerprint()

    def test_pushdown_table_scopes_sqlpush(self, backends):
        table = from_source(SqliteSource(backends["sqlite"], table="demo"))
        assert table.cache_scope == "sqlpush"
        assert table.cache_fingerprint() == (
            "sqlpush:" + table.fingerprint()
        )

    def test_streaming_table_scopes_by_profile_digest(self, backends):
        table = from_source(
            CsvSource(backends["csv"], name="demo"), materialize=False
        )
        expected = "stream-" + table.stream_profile.digest()[:16]
        assert table.cache_scope == expected
        assert table.cache_fingerprint().startswith(expected + ":")


class TestAutoMode:
    def test_small_source_materialises(self, backends):
        table = from_source(CsvSource(backends["csv"], name="demo"))
        assert table.source_info["mode"] == "materialized"
        assert table.stream_profile is None

    def test_mid_pass_demotion_to_streaming(self, backends):
        table = from_source(
            CsvSource(backends["csv"], name="demo"),
            chunk_rows=8,
            max_materialize_rows=20,
        )
        assert table.source_info["mode"] == "streaming"
        assert table.stream_profile is not None
        assert table.stream_profile.rows == len(ROWS)

    def test_sqlite_auto_uses_count_probe(self, backends):
        table = from_source(
            SqliteSource(backends["sqlite"], table="demo"),
            max_materialize_rows=10,
        )
        assert table.source_info["mode"] == "streaming"


class TestObservability:
    def test_request_events_carry_source_fields(self, backends):
        table = from_source(SqliteSource(backends["sqlite"], table="demo"))
        events = EventLog()
        select_top_k(table, k=3, events=events)
        request = next(e for e in events if e["kind"] == "request")
        assert request["source_kind"] == "sqlite"
        assert request["source_mode"] == "materialized"
        assert request["source_id"] == table.source_info["id"]

    def test_result_and_provenance_carry_source(self, backends):
        table = from_source(SqliteSource(backends["sqlite"], table="demo"))
        result = select_top_k(table, k=3, provenance=True)
        assert result.source["kind"] == "sqlite"
        report = provenance_report(result)
        assert report.startswith("source: sqlite")
        assert "pushdown" in report.splitlines()[0]

    def test_plain_table_has_no_source(self, backends):
        from repro.dataset.table import Table

        table = Table.from_rows("t", HEADER, [tuple(r) for r in ROWS])
        result = select_top_k(table, k=3)
        assert result.source is None

    def test_ingest_and_pushdown_metrics(self, backends):
        registry = MetricsRegistry()
        table = from_source(
            SqliteSource(backends["sqlite"], table="demo"), metrics=registry
        )
        select_top_k(table, k=3, metrics=registry)
        text = registry.to_prometheus_text()
        assert "ingest_rows_total" in text
        assert "pushdown_served_total" in text


class TestResolveSource:
    def test_extension_inference(self, tmp_path):
        assert resolve_source(tmp_path / "a.csv").kind == "csv"
        assert resolve_source(tmp_path / "a.jsonl").kind == "jsonl"
        assert resolve_source(tmp_path / "a.db", table="t").kind == "sqlite"

    def test_tsv_implies_tab_delimiter(self, tmp_path):
        source = resolve_source(tmp_path / "a.tsv")
        assert source.delimiter == "\t"

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="unknown source kind"):
            resolve_source(tmp_path / "a.csv", kind="parquet")

    def test_sqlite_needs_exactly_one_relation(self, tmp_path):
        with pytest.raises(DatasetError, match="exactly one"):
            SqliteSource(tmp_path / "a.db")
        with pytest.raises(DatasetError, match="exactly one"):
            SqliteSource(tmp_path / "a.db", table="t", query="SELECT 1")


class TestEngineEntryPoint:
    def test_deepeye_from_source(self, backends):
        engine = DeepEye(ranking="partial_order")
        table = engine.from_source(backends["sqlite"], table="demo")
        assert table.source_info["kind"] == "sqlite"
        result = engine.top_k(table, k=3)
        assert len(result.nodes) == 3

    def test_provider_survives_pickling(self, backends):
        from repro.language.ast import AggregateOp, GroupBy

        table = from_source(SqliteSource(backends["sqlite"], table="demo"))
        provider = table.pushdown_provider
        assert provider.serve(GroupBy("region"), AggregateOp.CNT, None)
        clone = pickle.loads(pickle.dumps(provider))
        assert clone._conn is None
        # The clone reconnects lazily and serves identically.
        assert clone.serve(GroupBy("region"), AggregateOp.CNT, None) == (
            provider.serve(GroupBy("region"), AggregateOp.CNT, None)
        )
