"""Unit tests for repro.dataset.table and stats."""

import datetime as dt

import pytest

from repro.dataset import Column, ColumnType, Table, column_stats, entropy, table_stats
from repro.errors import ColumnNotFoundError, DatasetError


def _table():
    return Table.from_dict(
        "t",
        {
            "city": ["a", "b", "a"],
            "value": [1, 2, 3],
            "when": [dt.datetime(2020, 1, 1 + i) for i in range(3)],
        },
    )


class TestConstruction:
    def test_from_dict_infers_types(self):
        table = _table()
        assert table.column("city").ctype is ColumnType.CATEGORICAL
        assert table.column("value").ctype is ColumnType.NUMERICAL
        assert table.column("when").ctype is ColumnType.TEMPORAL

    def test_from_rows(self):
        table = Table.from_rows("r", ["a", "b"], [[1, "x"], [2, "y"]])
        assert table.num_rows == 2
        assert list(table.column("b").values) == ["x", "y"]

    def test_from_rows_ragged_raises(self):
        with pytest.raises(DatasetError):
            Table.from_rows("r", ["a", "b"], [[1]])

    def test_mismatched_lengths_raise(self):
        cols = [
            Column("a", ColumnType.NUMERICAL, [1, 2]),
            Column("b", ColumnType.NUMERICAL, [1]),
        ]
        with pytest.raises(DatasetError):
            Table("bad", cols)

    def test_duplicate_names_raise(self):
        cols = [
            Column("a", ColumnType.NUMERICAL, [1]),
            Column("a", ColumnType.NUMERICAL, [2]),
        ]
        with pytest.raises(DatasetError):
            Table("bad", cols)

    def test_empty_table(self):
        table = Table("empty", [])
        assert table.num_rows == 0
        assert table.num_columns == 0


class TestAccess:
    def test_column_lookup_error_lists_available(self):
        with pytest.raises(ColumnNotFoundError) as err:
            _table().column("nope")
        assert "city" in str(err.value)

    def test_contains(self):
        table = _table()
        assert "city" in table
        assert "nope" not in table

    def test_row(self):
        table = _table()
        row = table.row(1)
        assert row[0] == "b"
        assert row[1] == 2.0

    def test_row_out_of_range(self):
        with pytest.raises(DatasetError):
            _table().row(99)

    def test_select_rows(self):
        sub = _table().select_rows([2, 0])
        assert sub.num_rows == 2
        assert list(sub.column("city").values) == ["a", "a"]

    def test_head(self):
        assert _table().head(2).num_rows == 2
        assert _table().head(100).num_rows == 3

    def test_project(self):
        sub = _table().project(["value"])
        assert sub.column_names == ("value",)

    def test_columns_of_type(self):
        assert [c.name for c in _table().columns_of_type(ColumnType.NUMERICAL)] == [
            "value"
        ]

    def test_type_counts(self):
        counts = _table().type_counts()
        assert counts[ColumnType.CATEGORICAL] == 1
        assert counts[ColumnType.NUMERICAL] == 1
        assert counts[ColumnType.TEMPORAL] == 1


class TestStats:
    def test_table_stats_row(self):
        stats = table_stats(_table())
        row = stats.as_row()
        assert row["#-tuples"] == 3
        assert row["#-columns"] == 3
        assert row["#-Cat"] == row["#-Num"] == row["#-Tem"] == 1

    def test_column_stats_numeric(self):
        stats = column_stats(_table().column("value"))
        assert stats.mean == pytest.approx(2.0)
        assert stats.min_value == 1.0

    def test_column_stats_categorical_has_no_moments(self):
        stats = column_stats(_table().column("city"))
        assert stats.mean is None and stats.std is None

    def test_entropy_uniform_is_log_n(self):
        import math

        assert entropy([1, 1, 1, 1]) == pytest.approx(math.log(4))

    def test_entropy_degenerate(self):
        assert entropy([5]) == 0.0
        assert entropy([]) == 0.0
        assert entropy([0, 0]) == 0.0


class TestFingerprint:
    def test_stable_across_calls_and_instances(self):
        assert _table().fingerprint() == _table().fingerprint()

    def test_table_name_excluded(self):
        # Content-based: renaming the *table* (re-read CSV, corpus dup)
        # must hit the same cache entries.
        a = Table.from_dict("a", {"x": [1, 2, 3]})
        b = Table.from_dict("b", {"x": [1, 2, 3]})
        assert a.fingerprint() == b.fingerprint()

    def test_renamed_column_changes_fingerprint(self):
        # Cache keys embed column names via query signatures, so
        # renamed-but-identical columns must NOT collide.
        a = Table.from_dict("t", {"x": [1, 2, 3], "y": [4, 5, 6]})
        b = Table.from_dict("t", {"x": [1, 2, 3], "z": [4, 5, 6]})
        assert a.fingerprint() != b.fingerprint()

    def test_value_change_changes_fingerprint(self):
        a = Table.from_dict("t", {"x": [1, 2, 3]})
        b = Table.from_dict("t", {"x": [1, 2, 4]})
        assert a.fingerprint() != b.fingerprint()

    def test_column_order_matters(self):
        a = Table.from_dict("t", {"x": [1, 2], "y": [3, 4]})
        b = Table.from_dict("t", {"y": [3, 4], "x": [1, 2]})
        assert a.fingerprint() != b.fingerprint()

    def test_type_matters(self):
        num = Table("t", [Column("x", ColumnType.NUMERICAL, [2020, 2021])])
        tem = Table("t", [Column("x", ColumnType.TEMPORAL, [2020, 2021])])
        assert num.fingerprint() != tem.fingerprint()

    def test_categorical_values_hashed(self):
        a = Table.from_dict("t", {"c": ["x", "y"]})
        b = Table.from_dict("t", {"c": ["x", "z"]})
        assert a.fingerprint() != b.fingerprint()


class TestFingerprintPersistence:
    """The persistent cache (repro.engine.persistent) keys disk entries
    on this digest, so it must be reproducible across processes — not
    just within one interpreter."""

    def test_same_csv_loaded_twice_matches(self, tmp_path):
        from repro.dataset.io import read_csv

        path = tmp_path / "data.csv"
        path.write_text("city,value\na,1.0\nb,2.0\na,3.0\n")
        assert read_csv(str(path)).fingerprint() == (
            read_csv(str(path)).fingerprint()
        )

    def test_stable_across_processes(self, tmp_path):
        import subprocess
        import sys

        path = tmp_path / "data.csv"
        path.write_text("city,value\na,1.0\nb,2.0\na,3.0\nc,4.5\n")
        script = (
            "from repro.dataset.io import read_csv;"
            f"print(read_csv({str(path)!r}).fingerprint())"
        )
        digests = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        from repro.dataset.io import read_csv

        digests.add(read_csv(str(path)).fingerprint())
        assert len(digests) == 1

    def test_digest_is_hex_sha256(self):
        fp = Table.from_dict("t", {"x": [1, 2, 3]}).fingerprint()
        assert isinstance(fp, str) and len(fp) == 64
        int(fp, 16)


class TestAppendRows:
    def _rows(self):
        return [
            ["c", 4, dt.datetime(2020, 1, 4)],
            ["a", 5, dt.datetime(2020, 1, 5)],
        ]

    def test_appends_rows_in_schema_order(self):
        grown = _table().append_rows(self._rows())
        assert grown.num_rows == 5
        assert grown.row(3) == ("c", 4.0, grown.column("when").values[3])
        assert list(grown.column("city").values) == ["a", "b", "a", "c", "a"]

    def test_original_table_is_untouched(self):
        table = _table()
        fingerprint = table.fingerprint()
        table.append_rows(self._rows())
        assert table.num_rows == 3
        assert table.fingerprint() == fingerprint

    def test_rolling_fingerprint_matches_scratch(self):
        # The acceptance bar for the rolling hash: growing a table must
        # give byte-for-byte the fingerprint of the same data built from
        # scratch — with the hash state warm (fingerprint() called
        # before the append) and cold alike.
        warm = _table()
        warm.fingerprint()  # builds the per-column rolling hash state
        cold = _table()
        scratch = Table.from_dict(
            "t",
            {
                "city": ["a", "b", "a", "c", "a"],
                "value": [1, 2, 3, 4, 5],
                "when": [dt.datetime(2020, 1, 1 + i) for i in range(5)],
            },
        )
        assert warm.append_rows(self._rows()).fingerprint() == scratch.fingerprint()
        assert cold.append_rows(self._rows()).fingerprint() == scratch.fingerprint()

    def test_chained_appends_match_one_shot(self):
        chained = _table().append_rows(self._rows()[:1]).append_rows(self._rows()[1:])
        one_shot = _table().append_rows(self._rows())
        assert chained.fingerprint() == one_shot.fingerprint()

    def test_schema_is_pinned_no_retyping(self):
        # Cells coerce to the existing column type; a numeric-looking
        # value appended to a categorical column stays a string.
        grown = _table().append_rows([[7, 8, dt.datetime(2020, 2, 1)]])
        assert grown.column("city").ctype is ColumnType.CATEGORICAL
        assert grown.column("city").values[-1] == "7"
        assert grown.column("value").values[-1] == 8.0

    def test_wrong_cell_count_raises_with_row_index(self):
        with pytest.raises(DatasetError, match="row 1"):
            _table().append_rows(
                [["a", 1, dt.datetime(2020, 2, 1)], ["b", 2]]
            )

    def test_uncoercible_cell_raises(self):
        with pytest.raises(DatasetError):
            _table().append_rows([["a", "not-a-number", dt.datetime(2020, 2, 1)]])

    def test_empty_append_returns_self(self):
        table = _table()
        assert table.append_rows([]) is table

    def test_fingerprinted_table_survives_pickling(self):
        import pickle

        table = _table()
        table.fingerprint()  # live hashlib state is unpicklable; dropped
        clone = pickle.loads(pickle.dumps(table))
        assert clone.fingerprint() == table.fingerprint()
        grown = clone.append_rows(self._rows())
        assert (
            grown.fingerprint()
            == _table().append_rows(self._rows()).fingerprint()
        )
