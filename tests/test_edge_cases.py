"""Adversarial-input and failure-injection tests across the stack."""

import datetime as dt
import math

import numpy as np
import pytest

from repro.core import (
    PartialOrderScorer,
    enumerate_rule_based,
    make_node,
    select_top_k,
)
from repro.dataset import ColumnType, Table
from repro.errors import ExecutionError, ValidationError
from repro.language import (
    AggregateOp,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    VisQuery,
    execute,
)


class TestHostileValues:
    def test_negative_values_throughout(self):
        table = Table.from_dict(
            "neg",
            {
                "kind": ["a", "b", "a", "b", "c", "c"],
                "value": [-5.0, -3.0, -8.0, -1.0, -2.0, -9.0],
            },
        )
        result = select_top_k(table, k=3)
        # Negative values exclude pies (min(Y') < 0) but bars survive.
        for node in result.nodes:
            assert node.chart is not ChartType.PIE

    def test_all_zero_numeric_column(self):
        table = Table.from_dict(
            "zero", {"kind": ["a", "b", "a", "b"], "value": [0.0, 0.0, 0.0, 0.0]}
        )
        result = select_top_k(table, k=2)
        assert isinstance(result.nodes, list)  # no crash; may be few charts

    def test_unicode_categories(self):
        table = Table.from_dict(
            "uni",
            {
                "城市": ["北京", "上海", "北京", "深圳"],
                "值": [1.0, 2.0, 3.0, 4.0],
            },
        )
        nodes = enumerate_rule_based(table)
        assert nodes
        q = VisQuery(
            chart=ChartType.BAR, x="城市", y="值",
            transform=GroupBy("城市"), aggregate=AggregateOp.SUM,
        )
        data = execute(q, table)
        assert "北京" in data.x_labels

    def test_extreme_magnitudes(self):
        table = Table.from_dict(
            "big",
            {
                "kind": ["a", "b", "a", "b"],
                "value": [1e15, 2e15, 1e-15, 3e15],
            },
        )
        result = select_top_k(table, k=2)
        for node in result.nodes:
            assert all(math.isfinite(v) for v in node.data.y_values)

    def test_single_row_table(self):
        table = Table.from_dict("one", {"kind": ["a"], "value": [1.0]})
        result = select_top_k(table, k=3)
        # One row can never produce a >=2-bucket chart via rules; the
        # selector degrades gracefully to whatever exists (possibly none).
        assert isinstance(result.nodes, list)

    def test_two_identical_columns(self):
        table = Table.from_dict(
            "dup", {"a": [1.0, 2.0, 3.0, 4.0] * 5, "b": [1.0, 2.0, 3.0, 4.0] * 5}
        )
        nodes = enumerate_rule_based(table)
        # Perfectly correlated pair: the raw scatter rule must fire.
        assert any(
            n.chart is ChartType.SCATTER and n.query.transform is None
            for n in nodes
        )

    def test_high_cardinality_categorical(self):
        table = Table.from_dict(
            "wide",
            {
                "id": [f"row{i}" for i in range(300)],
                "value": [float(i % 7) for i in range(300)],
            },
        )
        result = select_top_k(table, k=3)
        for node in result.nodes:
            # 300 one-row groups is never a good chart; M should have
            # filtered bar/pie over the id column into the tail.
            if node.query.x == "id":
                assert node.data.distinct_x <= 300


class TestScorerDegenerateSets:
    def test_single_node_set(self, flights_table):
        nodes = enumerate_rule_based(flights_table)[:1]
        scores = PartialOrderScorer().score(nodes)
        assert len(scores) == 1
        assert scores[0].w == 1.0  # the only node is maximal by definition

    def test_identical_nodes(self, flights_table):
        nodes = enumerate_rule_based(flights_table)[:1] * 5
        scores = PartialOrderScorer().score(nodes)
        assert all(s == scores[0] for s in scores)


class TestExecutorFailureModes:
    def test_empty_table(self):
        table = Table.from_dict("e", {"a": [], "b": []})
        q = VisQuery(chart=ChartType.SCATTER, x="a", y="b")
        with pytest.raises((ExecutionError, ValidationError)):
            execute(q, table)

    def test_bin_count_larger_than_rows(self):
        table = Table.from_dict("t", {"x": [1.0, 2.0, 3.0], "y": [1.0, 2.0, 3.0]})
        q = VisQuery(
            chart=ChartType.BAR, x="x", y="y",
            transform=BinIntoBuckets("x", 1000), aggregate=AggregateOp.SUM,
        )
        data = execute(q, table)
        assert data.transformed_rows <= 3

    def test_nan_in_generated_temporal_handled(self):
        # Temporal columns are float seconds internally; ensure a table
        # with clustered timestamps doesn't trip binning.
        stamps = [dt.datetime(2020, 1, 1)] * 10
        table = Table.from_dict("t", {"when": stamps, "v": list(range(10))})
        nodes = enumerate_rule_based(table)
        for node in nodes:
            assert node.data.transformed_rows >= 2


class TestRecognizerRobustness:
    def test_predict_on_unseen_table_types(self, flights_table):
        """A recognizer trained on one table must accept nodes from a
        schema it has never seen (encoding is schema-independent)."""
        from repro.core import VisualizationRecognizer
        from repro.core.partial_order import matching_quality_raw

        nodes = enumerate_rule_based(flights_table)
        labels = [matching_quality_raw(n) > 0 for n in nodes]
        recognizer = VisualizationRecognizer().fit(nodes, labels)

        other = Table.from_dict(
            "other",
            {"k": ["x", "y", "z"] * 20, "v": [float(i) for i in range(60)]},
        )
        other_nodes = enumerate_rule_based(other)
        predictions = recognizer.predict(other_nodes)
        assert len(predictions) == len(other_nodes)
