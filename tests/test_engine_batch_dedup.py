"""Tests for cross-table computation sharing in batch_select."""

import numpy as np
import pytest

from repro.core import DeepEye
from repro.corpus.generators import make_table
from repro.dataset import Column, ColumnType, Table
from repro.engine.shared_scan import (
    BatchDedupStats,
    batch_shared_transforms,
    transform_signature,
)
from repro.language.ast import (
    BinByGranularity,
    BinByUDF,
    BinGranularity,
    BinIntoBuckets,
    GroupBy,
)
from repro.obs.kernels import KERNEL_STATS

_TRANSFORM_KERNELS = (
    "group_categorical", "bin_numeric", "bin_temporal", "bin_udf",
)


class TestColumnFingerprint:
    def test_name_independent(self):
        a = Column("alpha", ColumnType.NUMERICAL, np.array([1.0, 2.0, 3.0]))
        b = Column("beta", ColumnType.NUMERICAL, np.array([1.0, 2.0, 3.0]))
        assert a.fingerprint() == b.fingerprint()

    def test_value_and_type_sensitive(self):
        base = Column("c", ColumnType.NUMERICAL, np.array([1.0, 2.0]))
        other = Column("c", ColumnType.NUMERICAL, np.array([1.0, 2.5]))
        assert base.fingerprint() != other.fingerprint()
        cat = Column("c", ColumnType.CATEGORICAL, np.array(["1.0", "2.0"]))
        assert base.fingerprint() != cat.fingerprint()

    def test_memoised_and_carried_through_rename(self):
        col = Column("c", ColumnType.CATEGORICAL, np.array(["x", "y"]))
        fp = col.fingerprint()
        assert col.fingerprint() is fp  # cached
        assert col.renamed("other").fingerprint() == fp

    def test_stable_hex_digest(self):
        col = Column("c", ColumnType.NUMERICAL, np.array([1.0, 2.0, 3.0]))
        fp = col.fingerprint()
        assert isinstance(fp, str) and len(fp) == 64
        int(fp, 16)  # valid hex


class TestTransformSignature:
    def test_name_independent_for_every_node(self):
        pairs = [
            (GroupBy("a"), GroupBy("b")),
            (
                BinByGranularity("a", BinGranularity.MONTH),
                BinByGranularity("b", BinGranularity.MONTH),
            ),
            (BinIntoBuckets("a", 7), BinIntoBuckets("b", 7)),
        ]
        for left, right in pairs:
            assert transform_signature(left) == transform_signature(right)

    def test_parameter_sensitive(self):
        assert transform_signature(
            BinByGranularity("a", BinGranularity.MONTH)
        ) != transform_signature(BinByGranularity("a", BinGranularity.YEAR))
        assert transform_signature(BinIntoBuckets("a", 7)) != transform_signature(
            BinIntoBuckets("a", 9)
        )
        assert transform_signature(GroupBy("a")) != transform_signature(
            BinIntoBuckets("a", 7)
        )

    def test_udf_keyed_by_name(self):
        udf = lambda value: value  # noqa: E731 - identity stand-in
        assert transform_signature(BinByUDF("a", "hour_of_day", udf)) == (
            transform_signature(BinByUDF("b", "hour_of_day", udf))
        )
        assert transform_signature(BinByUDF("a", "hour_of_day", udf)) != (
            transform_signature(BinByUDF("a", "day_of_week", udf))
        )


def _duplicate_with_renamed_columns(table, name):
    columns = [
        col.renamed(f"{col.name}_copy") for col in table.columns
    ]
    return Table(name, columns)


class TestBatchSharedTransforms:
    def test_seeds_shared_groups_once(self):
        base = make_table("City Weather", scale=0.5, seed=3)
        twin = _duplicate_with_renamed_columns(base, "City Weather Twin")
        other = make_table("Monthly Sales", scale=0.5, seed=4)
        engine = DeepEye()
        entries, stats = batch_shared_transforms(
            [base, twin, other], engine.config, mode="rules"
        )
        assert isinstance(stats, BatchDedupStats)
        assert stats.tables == 3
        # every shared (column, transform) pair costs one computation
        # and seeds >= 2 distinct cache keys
        assert stats.reused > 0
        assert stats.computed + stats.reused == len(entries)
        for (table_fp, transform), value in entries.items():
            assert isinstance(table_fp, str)
            assert value is not None

    def test_no_sharing_across_disjoint_tables(self):
        a = make_table("City Weather", scale=0.5, seed=3)
        b = make_table("Monthly Sales", scale=0.5, seed=4)
        engine = DeepEye()
        entries, stats = batch_shared_transforms([a, b], engine.config)
        # different data: only coincidentally identical columns share
        assert stats.reused == len(entries) - stats.computed

    def test_single_table_shares_nothing(self):
        table = make_table("City Weather", scale=0.5, seed=3)
        engine = DeepEye()
        entries, stats = batch_shared_transforms([table], engine.config)
        assert entries == {}
        assert stats.reused == 0


class TestBatchSelectDedup:
    @pytest.fixture()
    def fleet(self):
        base = make_table("City Weather", scale=0.5, seed=3)
        twin = _duplicate_with_renamed_columns(base, "City Weather Twin")
        other = make_table("Monthly Sales", scale=0.5, seed=4)
        return [base, twin, other]

    @staticmethod
    def _chart_ids(results):
        from repro.obs.drift import node_id

        return [[node_id(node) for node in r.nodes] for r in results]

    def test_topk_identical_with_and_without_dedup(self, fleet):
        plain = DeepEye(ranking="partial_order")
        off = list(plain.top_k_batch(fleet, k=5, n_jobs=1, dedup=False))
        shared = DeepEye(ranking="partial_order")
        on = list(shared.top_k_batch(fleet, k=5, n_jobs=1, dedup=True))
        assert self._chart_ids(off) == self._chart_ids(on)

    def test_dedup_reduces_transform_kernel_calls(self, fleet):
        baseline = DeepEye(ranking="partial_order")
        KERNEL_STATS.reset()
        list(baseline.top_k_batch(fleet, k=5, n_jobs=1, dedup=False))
        without = KERNEL_STATS.calls(*_TRANSFORM_KERNELS)

        shared = DeepEye(ranking="partial_order")
        KERNEL_STATS.reset()
        list(shared.top_k_batch(fleet, k=5, n_jobs=1, dedup=True))
        with_dedup = KERNEL_STATS.calls(*_TRANSFORM_KERNELS)

        assert with_dedup < without

    def test_dedup_defaults_on_with_cache_off_without(self, fleet):
        with_cache = DeepEye(ranking="partial_order")
        assert with_cache.cache is not None
        # dedup=None + cache => sharing happens (reused counter visible
        # through metrics when enabled); minimally: results unchanged
        default_run = list(with_cache.top_k_batch(fleet, k=5, n_jobs=1))
        explicit = list(
            DeepEye(ranking="partial_order").top_k_batch(fleet, k=5, n_jobs=1, dedup=True)
        )
        assert self._chart_ids(default_run) == self._chart_ids(explicit)

        no_cache = DeepEye(ranking="partial_order", cache=False)
        assert no_cache.cache is None
        off_run = list(no_cache.top_k_batch(fleet, k=5, n_jobs=1))
        assert self._chart_ids(off_run) == self._chart_ids(explicit)
