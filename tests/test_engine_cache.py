"""Unit tests for the multi-level serving cache (repro.engine.cache)."""

import pickle

import pytest

from repro.core import EnumerationConfig, select_top_k
from repro.core.enumeration import EnumerationContext, enumerate_rule_based
from repro.dataset import Table
from repro.engine import LRUCache, MultiLevelCache


def _table(name="t"):
    return Table.from_dict(
        name,
        {
            "city": ["a", "b", "a", "c", "b", "a"],
            "value": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            "size": [9.0, 8.0, 7.0, 6.0, 5.0, 4.0],
        },
    )


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats() == {
            "hits": 1, "misses": 1, "evictions": 0, "size": 1,
        }

    def test_eviction_is_lru(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # touch: b becomes least recently used
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_put_existing_key_does_not_evict(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("a") == 10

    def test_zero_maxsize_disables_storage(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear_resets_counters(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.clear()
        assert cache.stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0,
        }

    def test_picklable_across_processes(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get("a") == 1
        clone.put("b", 2)  # the restored lock works
        assert len(clone) == 2


class TestMultiLevelCache:
    def test_stats_by_level_reports_all_levels(self):
        cache = MultiLevelCache()
        cache.transforms.put("t", 1)
        cache.features.get("missing")
        levels = cache.stats_by_level()
        assert levels["transforms"]["size"] == 1
        assert levels["features"]["misses"] == 1
        assert levels["results"]["hits"] == 0
        assert levels["aggregate"]["misses"] == 1

    def test_flat_stats_shim_removed(self):
        # The deprecated flat stats() shim is gone; stats_by_level() is
        # the only multi-level counter surface.
        assert not hasattr(MultiLevelCache(), "stats")

    def test_clear_empties_every_level(self):
        cache = MultiLevelCache()
        cache.transforms.put("t", 1)
        cache.results.put("r", 2)
        cache.clear()
        assert len(cache.transforms) == len(cache.results) == 0


class TestSelectionCaching:
    def test_warm_repeat_hits_result_cache(self):
        cache = MultiLevelCache()
        table = _table()
        cold = select_top_k(table, k=3, cache=cache)
        warm = select_top_k(table, k=3, cache=cache)
        assert warm.cache_stats["results_hits"] == 1
        assert [n.key() for n in cold.nodes] == [n.key() for n in warm.nodes]
        assert cold.order == warm.order

    def test_cached_result_matches_uncached(self):
        result_plain = select_top_k(_table(), k=3)
        result_cached = select_top_k(_table(), k=3, cache=MultiLevelCache())
        assert [n.key() for n in result_plain.nodes] == [
            n.key() for n in result_cached.nodes
        ]
        assert result_plain.cache_stats == {}
        assert result_cached.cache_stats["results_misses"] == 1

    def test_different_k_reuses_lower_levels(self):
        cache = MultiLevelCache()
        select_top_k(_table(), k=2, cache=cache)
        result = select_top_k(_table(), k=3, cache=cache)
        # A different k misses the result level but the transform and
        # feature levels carry over wholesale.
        assert result.cache_stats["results_hits"] == 0
        assert result.cache_stats["transforms_hits"] > 0
        assert result.cache_stats["features_hits"] > 0

    def test_fingerprint_keying_shares_across_equal_tables(self):
        cache = MultiLevelCache()
        ctx_a = EnumerationContext(_table("a"), cache=cache)
        enumerate_rule_based(ctx_a.table, context=ctx_a)
        misses_after_first = cache.transforms.misses
        ctx_b = EnumerationContext(_table("b"), cache=cache)
        enumerate_rule_based(ctx_b.table, context=ctx_b)
        # Same content, different table name: every transform hits.
        assert cache.transforms.misses == misses_after_first
        assert cache.transforms.hits > 0

    def test_result_cache_respects_k(self):
        cache = MultiLevelCache()
        r2 = select_top_k(_table(), k=2, cache=cache)
        r3 = select_top_k(_table(), k=3, cache=cache)
        assert len(r2.nodes) == 2
        assert len(r3.nodes) == 3


class TestThreadSafety:
    def test_concurrent_get_put_never_corrupts(self):
        import threading

        cache = LRUCache(maxsize=64)
        errors = []

        def hammer(worker):
            try:
                for i in range(2000):
                    key = ("k", i % 100)
                    cache.put(key, (worker, i))
                    value = cache.get(key)
                    # evicted-or-complete: a torn entry would surface
                    # as a KeyError/RuntimeError from the shared dict
                    assert value is None or len(value) == 2
                    if i % 50 == 0:
                        cache.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache._data) <= 64

    def test_counters_consistent_under_contention(self):
        import threading

        cache = LRUCache(maxsize=8)

        def spin():
            for i in range(1000):
                cache.put(i, i)
                cache.get(i)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 4000


class TestEmitEventsNamespacing:
    def test_cache_event_nests_levels(self):
        from repro.obs.events import EventLog

        log = EventLog()
        log.begin_request(table="t")
        cache = MultiLevelCache()
        cache.transforms.put("k", "v")
        cache.transforms.get("k")
        cache.emit_events(log, table="t")
        cache_events = log.by_kind("cache")
        assert len(cache_events) == 1
        levels = cache_events[0]["levels"]
        assert set(levels) == {"transforms", "features", "results"}
        assert levels["transforms"]["hits"] == 1
        # no per-level counters spread at the top level (the v1 bug:
        # identical keys across levels silently overwrote each other)
        assert "hits" not in cache_events[0]
