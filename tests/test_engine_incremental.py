"""Tests for incremental append-delta top-k maintenance.

The acceptance bar: after *any* sequence of appends, the session's
top-k — chart ids, order, and scores — is byte-identical to a
from-scratch ``select_top_k`` over the grown table, gated through
``classify_drift`` exactly as the CI job does.
"""

import datetime as dt

import numpy as np
import pytest

from repro import IncrementalSession, Table
from repro.core import select_top_k
from repro.core.enumeration import EnumerationConfig
from repro.engine import DiskCacheTier, MultiLevelCache
from repro.engine.incremental import AppendReport, IncrementalDriftError
from repro.errors import DatasetError, SelectionError
from repro.obs import MetricsRegistry, Tracer, parse_prometheus_text
from repro.obs.drift import classify_drift, entry_from_result
from repro.obs.events import EventLog


def _rows(seed, n, new_label=False, nan_price=False):
    rng = np.random.default_rng(seed)
    cats = ["alpha", "beta", "gamma", "delta"]
    rows = []
    for i in range(n):
        label = "epsilon" if new_label and i == 0 else cats[rng.integers(4)]
        price = float("nan") if nan_price and i == 0 else float(rng.normal(50, 10))
        rows.append(
            [
                label,
                price,
                float(rng.integers(0, 1000)),
                dt.date(2020 + int(rng.integers(5)), int(rng.integers(1, 13)), int(rng.integers(1, 28))),
            ]
        )
    return rows


def _living_table(seed=0, n=150):
    return Table.from_rows(
        "living", ["region", "price", "units", "day"], _rows(seed, n)
    )


def _scratch_entry(table, k=5):
    result = select_top_k(table, k=k, provenance=True)
    return entry_from_result(table.name, table.fingerprint(), result)


class TestByteIdentity:
    def test_every_append_matches_scratch(self):
        session = IncrementalSession(_living_table(), k=5)
        for seed, batch in enumerate(
            [_rows(1, 40), _rows(2, 120, new_label=True), _rows(3, 1), _rows(4, 64)]
        ):
            session.append(batch)
            drift = classify_drift(
                _scratch_entry(session.table), session.entry
            )
            assert drift["kind"] == "identical", drift

    def test_auto_verify_never_raises_over_sequences(self):
        session = IncrementalSession(_living_table(3, 120), k=4, auto_verify=True)
        for batch in [_rows(7, 30), _rows(8, 90, new_label=True), [], _rows(9, 15)]:
            session.append(batch)
        assert session.epoch == 3  # the empty batch is not an epoch

    def test_verify_returns_identical_report(self):
        session = IncrementalSession(_living_table(), k=5)
        session.append(_rows(5, 50))
        report = session.verify()
        assert report["kind"] == "identical"
        assert report["epoch"] == 1

    def test_verify_raises_on_tampered_state(self):
        session = IncrementalSession(_living_table(), k=5)
        session.append(_rows(5, 50))
        session._entry = dict(session._entry, chart_ids=["bogus"], scores=[1.0])
        with pytest.raises(IncrementalDriftError) as excinfo:
            session.verify()
        assert excinfo.value.report["kind"] in ("churned", "missing")

    def test_nan_append_invalidates_and_still_matches_scratch(self):
        # A NaN row reaching the numeric column makes its binning
        # transforms inexecutable; the session must converge to exactly
        # what scratch produces for the grown (NaN-bearing) table.
        session = IncrementalSession(_living_table(), k=5)
        report = session.append(_rows(6, 20, nan_price=True))
        assert report.transforms_invalidated > 0
        assert session.verify()["kind"] == "identical"
        # ...and keep matching on subsequent appends.
        session.append(_rows(7, 20))
        assert session.verify()["kind"] == "identical"

    def test_new_label_batch_grows_buckets_not_rebuilds(self):
        session = IncrementalSession(_living_table(), k=5)
        report = session.append(_rows(2, 30, new_label=True))
        assert report.transforms_merged > 0
        assert session.verify()["kind"] == "identical"


class TestAppendReport:
    def test_report_shape(self):
        session = IncrementalSession(_living_table(), k=3)
        report = session.append(_rows(1, 25))
        assert isinstance(report, AppendReport)
        assert report.epoch == 1
        assert report.appended_rows == 25
        assert report.total_rows == 175
        assert report.fingerprint == session.table.fingerprint()
        assert set(report.timings) >= {"merge", "enumerate", "recognize", "rank"}
        assert report.transforms_merged + report.transforms_rebuilt > 0

    def test_empty_append_is_identical_and_free(self):
        session = IncrementalSession(_living_table(), k=3)
        before = session.topk_ids
        report = session.append([])
        assert report.appended_rows == 0
        assert report.drift["kind"] == "identical"
        assert not report.churned
        assert session.topk_ids == before
        assert session.epoch == 0

    def test_k_must_be_non_negative(self):
        with pytest.raises(SelectionError):
            IncrementalSession(_living_table(), k=-1)

    def test_schema_is_pinned_on_append(self):
        session = IncrementalSession(_living_table(), k=3)
        with pytest.raises(DatasetError):
            session.append([["alpha", 1.0]])  # wrong cell count


class TestChurnSubscription:
    def test_callback_fires_only_on_churn(self):
        session = IncrementalSession(_living_table(), k=5)
        seen = []
        unsubscribe = session.subscribe(lambda r: seen.append(r.epoch))
        session.append([])  # identical -> no callback
        assert seen == []
        # A large skewed batch reshapes most aggregates.
        report = session.append(_rows(11, 200, new_label=True))
        if report.churned:
            assert seen == [report.epoch]
        else:
            assert seen == []
        unsubscribe()
        session.append(_rows(12, 200))
        assert len(seen) <= 1  # no further deliveries after unsubscribe

    def test_unsubscribe_is_idempotent(self):
        session = IncrementalSession(_living_table(), k=3)
        unsubscribe = session.subscribe(lambda r: None)
        unsubscribe()
        unsubscribe()  # second call must not raise


class TestObservability:
    def test_delta_events_cover_every_merge_decision(self):
        events = EventLog(sample_rate=1.0)
        session = IncrementalSession(_living_table(), k=3, events=events)
        report = session.append(_rows(13, 40))
        deltas = events.by_kind("delta")
        per_transform = [e for e in deltas if "summary" not in e]
        summaries = [e for e in deltas if e.get("summary")]
        assert len(per_transform) == (
            report.transforms_merged
            + report.transforms_rebuilt
            + report.transforms_invalidated
        )
        assert len(summaries) == 1
        assert summaries[0]["drift"] == report.drift["kind"]
        assert {e["action"] for e in per_transform} <= {
            "merged", "rebuilt", "invalidated"
        }

    def test_phase_score_and_rank_events_per_epoch(self):
        events = EventLog(sample_rate=1.0)
        session = IncrementalSession(_living_table(), k=3, events=events)
        session.append(_rows(14, 30))
        phases = {e["phase"] for e in events.by_kind("phase")}
        assert {"merge", "enumerate", "recognize", "rank"} <= phases
        ranks = events.by_kind("rank")
        assert len(ranks) == 2  # init epoch + one append
        assert ranks[-1]["chart_ids"] == session.topk_ids
        scores = events.by_kind("score")
        assert len(scores) == 2 * len(session.topk_ids)

    def test_spans_and_metrics(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        session = IncrementalSession(
            _living_table(), k=3, tracer=tracer, metrics=registry
        )
        report = session.append(_rows(15, 30))
        root = tracer.find("incremental_append")
        assert root is not None
        child_names = [c.name for c in root.children]
        for name in ("merge", "enumerate", "recognize", "rank"):
            assert name in child_names
        samples = parse_prometheus_text(registry.to_prometheus_text())
        assert samples[("incremental_appends_total", ())] == 1
        assert samples[("incremental_appended_rows_total", ())] == 30
        assert (
            samples[
                ("incremental_transforms_total", (("action", "merged"),))
            ]
            == report.transforms_merged
        )
        kind = report.drift["kind"]
        assert samples[
            ("incremental_topk_drift_total", (("kind", kind),))
        ] == 1
        assert samples[("incremental_append_seconds_count", ())] == 1


class TestCacheInterplay:
    def test_merged_transforms_published_under_new_fingerprint(self):
        cache = MultiLevelCache()
        session = IncrementalSession(_living_table(), k=3, cache=cache)
        report = session.append(_rows(16, 40))
        new_fp = session.table.fingerprint()
        published = [
            key
            for key in cache.transforms
            if isinstance(key, tuple) and key[0] == new_fp
        ]
        assert len(published) >= report.transforms_merged
        # A scratch run over the grown table rides the published merges:
        # zero transform kernel misses beyond what enumeration needs.
        result = select_top_k(session.table, k=3, cache=cache, provenance=True)
        entry = entry_from_result(
            session.table.name, new_fp, result
        )
        assert classify_drift(entry, session.entry)["kind"] == "identical"

    def test_disk_tier_riding_session_stays_identical(self, tmp_path):
        cache = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        session = IncrementalSession(_living_table(), k=3, cache=cache)
        session.append(_rows(17, 30))
        assert session.verify()["kind"] == "identical"

    def test_session_never_stores_result_level_entries(self):
        # SelectionResult from a session has truncated order (top-k
        # selection, not a full sort) — publishing it at the results
        # level would poison select_top_k's result cache.
        cache = MultiLevelCache()
        session = IncrementalSession(_living_table(), k=3, cache=cache)
        session.append(_rows(18, 30))
        assert len(cache.results) == 0


class TestConfigSurface:
    def test_exhaustive_enumeration_supported(self):
        table = _living_table(5, 80)
        session = IncrementalSession(table, k=4, enumeration="exhaustive")
        session.append(_rows(19, 40))
        result = select_top_k(
            session.table, k=4, enumeration="exhaustive", provenance=True
        )
        entry = entry_from_result(
            session.table.name, session.table.fingerprint(), result
        )
        assert classify_drift(entry, session.entry)["kind"] == "identical"

    def test_custom_config_threads_through(self):
        config = EnumerationConfig(numeric_bins=(7,))
        session = IncrementalSession(_living_table(), k=3, config=config)
        session.append(_rows(20, 30))
        result = select_top_k(
            session.table, k=3, config=config, provenance=True
        )
        entry = entry_from_result(
            session.table.name, session.table.fingerprint(), result
        )
        assert classify_drift(entry, session.entry)["kind"] == "identical"
