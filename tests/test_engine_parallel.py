"""Tests for the parallel batch-serving executor (repro.engine.parallel)."""

import os

import pytest

from repro.core import DeepEye, EnumerationConfig, select_top_k
from repro.core.enumeration import enumerate_candidates
from repro.engine import parallel_enumerate, resolve_n_jobs
from repro.errors import SelectionError


def _keys(result):
    return [node.key() for node in result.nodes]


class TestResolveNJobs:
    def test_serial_values(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(0) == 1
        assert resolve_n_jobs(1) == 1

    def test_positive_passthrough(self):
        assert resolve_n_jobs(4) == 4

    def test_negative_counts_from_cpus(self):
        cpus = os.cpu_count() or 1
        assert resolve_n_jobs(-1) == cpus
        assert resolve_n_jobs(-cpus) == 1


class TestParallelEnumerate:
    @pytest.mark.parametrize("mode", ["rules", "exhaustive"])
    def test_serial_fallback_matches_enumerate_candidates(self, tiny_table, mode):
        serial = enumerate_candidates(tiny_table, mode)
        nodes, mask = parallel_enumerate(tiny_table, mode, n_jobs=1)
        assert [n.key() for n in nodes] == [n.key() for n in serial]
        assert len(mask) == len(nodes)

    @pytest.mark.parametrize("mode", ["rules", "exhaustive"])
    def test_thread_pool_order_identical_to_serial(self, tiny_table, mode):
        serial, _ = parallel_enumerate(tiny_table, mode, n_jobs=1)
        nodes, mask = parallel_enumerate(
            tiny_table, mode, n_jobs=4, backend="thread"
        )
        assert [n.key() for n in nodes] == [n.key() for n in serial]
        assert len(mask) == len(nodes)

    def test_process_pool_order_identical_to_serial(self, tiny_table):
        serial, serial_mask = parallel_enumerate(tiny_table, "rules", n_jobs=1)
        nodes, mask = parallel_enumerate(
            tiny_table, "rules", n_jobs=2, backend="process"
        )
        assert [n.key() for n in nodes] == [n.key() for n in serial]
        assert mask == serial_mask

    def test_unknown_backend_rejected(self, tiny_table):
        with pytest.raises(SelectionError):
            parallel_enumerate(tiny_table, "rules", n_jobs=2, backend="gpu")

    def test_unknown_mode_rejected(self, tiny_table):
        with pytest.raises(ValueError):
            parallel_enumerate(tiny_table, "everything", n_jobs=2)


class TestParallelSelection:
    def test_n_jobs_4_output_equals_serial(self, flights_table):
        serial = select_top_k(flights_table, k=5)
        parallel = select_top_k(
            flights_table,
            k=5,
            config=EnumerationConfig(n_jobs=4, backend="thread"),
        )
        assert _keys(parallel) == _keys(serial)
        assert parallel.order == serial.order
        assert parallel.candidates == serial.candidates
        assert parallel.valid == serial.valid

    def test_exhaustive_parallel_equals_serial(self, tiny_table):
        serial = select_top_k(tiny_table, k=4, enumeration="exhaustive")
        parallel = select_top_k(
            tiny_table,
            k=4,
            enumeration="exhaustive",
            config=EnumerationConfig(n_jobs=3, backend="thread"),
        )
        assert _keys(parallel) == _keys(serial)
        assert parallel.order == serial.order

    def test_n_jobs_override_param(self, tiny_table):
        serial = select_top_k(tiny_table, k=3)
        parallel = select_top_k(tiny_table, k=3, n_jobs=2)
        assert _keys(parallel) == _keys(serial)


class TestDeepEyeServing:
    def test_engine_n_jobs_identical_results(self, flights_table):
        serial = DeepEye(
            ranking="partial_order", recognizer_model=None, cache=False
        ).top_k(flights_table, k=4)
        parallel = DeepEye(
            ranking="partial_order",
            recognizer_model=None,
            n_jobs=4,
            backend="thread",
            cache=False,
        ).top_k(flights_table, k=4)
        assert _keys(parallel) == _keys(serial)

    def test_repeated_top_k_hits_engine_cache(self, flights_table):
        engine = DeepEye(ranking="partial_order", recognizer_model=None)
        first = engine.top_k(flights_table, k=3)
        assert first.cache_stats["results_hits"] == 0
        second = engine.top_k(flights_table, k=3)
        assert second.cache_stats["results_hits"] == 1
        assert _keys(second) == _keys(first)

    def test_top_k_batch_streams_in_input_order(self, flights_table, tiny_table):
        engine = DeepEye(
            ranking="partial_order", recognizer_model=None, cache=False
        )
        tables = [flights_table, tiny_table]
        results = list(engine.top_k_batch(tables, k=3))
        assert len(results) == 2
        for table, result in zip(tables, results):
            assert _keys(result) == _keys(engine.top_k(table, k=3))

    def test_top_k_batch_thread_pool_matches_serial(
        self, flights_table, tiny_table
    ):
        engine = DeepEye(
            ranking="partial_order", recognizer_model=None, cache=False
        )
        tables = [flights_table, tiny_table, flights_table]
        serial = list(engine.top_k_batch(tables, k=3, n_jobs=1))
        pooled = list(
            engine.top_k_batch(tables, k=3, n_jobs=2, backend="thread")
        )
        assert [_keys(r) for r in pooled] == [_keys(r) for r in serial]

    def test_top_k_batch_over_example_datasets(self):
        from repro.corpus.generators import make_table

        tables = [
            make_table("Monthly Sales", scale=0.05),
            make_table("Exam Scores", scale=0.05),
        ]
        engine = DeepEye(ranking="partial_order", recognizer_model=None)
        results = list(engine.top_k_batch(tables, k=3))
        assert len(results) == 2
        for result in results:
            assert 0 < len(result.nodes) <= 3


class TestSlowTableLogConcurrency:
    def test_concurrent_appends_and_reads_are_safe(self):
        import threading

        from repro.engine.parallel import SlowTableLog

        log = SlowTableLog(maxlen=64)
        errors = []
        stop = threading.Event()

        def writer(tag):
            for i in range(500):
                log.append({"table": f"{tag}-{i}", "seconds": 0.1})

        def reader():
            # Iterating while writers mutate used to raise
            # "deque mutated during iteration".
            while not stop.is_set():
                try:
                    entries = list(log)
                    for entry in entries:
                        assert "table" in entry
                    len(log)
                    if entries:
                        log[0]
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [
            threading.Thread(target=writer, args=(tag,))
            for tag in ("a", "b", "c")
        ]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert errors == []
        assert len(log) == 64
        # Newest-first ordering survives: head is some writer's last entry.
        assert log[0]["table"].split("-")[1] == "499"

    def test_pickles_without_its_lock(self):
        import pickle

        from repro.engine.parallel import SlowTableLog

        log = SlowTableLog(maxlen=8)
        log.append({"table": "t", "seconds": 1.0})
        clone = pickle.loads(pickle.dumps(log))
        assert clone[0]["table"] == "t"
        clone.append({"table": "u", "seconds": 2.0})  # restored lock works
        assert len(clone) == 2
