"""Tests for the disk-backed L4 cache tier (repro.engine.persistent)."""

import multiprocessing
import os
import pickle

import pytest

from repro.core import select_top_k
from repro.dataset import Table
from repro.engine import DiskCacheTier, MultiLevelCache
from repro.engine.persistent import (
    PERSISTENT_CACHE_SCHEMA_VERSION,
    cache_key_signature,
)
from repro.language.ast import BinGranularity, BinByGranularity, GroupBy
from repro.obs.drift import build_snapshot, diff_snapshots, entry_from_result


def _table(name="t"):
    return Table.from_dict(
        name,
        {
            "city": ["a", "b", "a", "c", "b", "a"],
            "value": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            "size": [9.0, 8.0, 7.0, 6.0, 5.0, 4.0],
        },
    )


class TestCacheKeySignature:
    def test_stable_across_equal_keys(self):
        a = ("fp", GroupBy("city"), 3, None)
        b = ("fp", GroupBy("city"), 3, None)
        assert cache_key_signature(a) == cache_key_signature(b)

    def test_sensitive_to_every_component(self):
        base = cache_key_signature(("fp", GroupBy("city"), 3))
        assert cache_key_signature(("fp2", GroupBy("city"), 3)) != base
        assert cache_key_signature(("fp", GroupBy("town"), 3)) != base
        assert cache_key_signature(("fp", GroupBy("city"), 4)) != base

    def test_enum_uses_value_not_repr(self):
        sig = cache_key_signature((BinByGranularity("d", BinGranularity.MONTH),))
        assert "MONTH" in sig or "month" in sig.lower()
        # str-enum formatting differs across Python versions; the
        # signature must come from .value, never str()/format().
        assert "BinGranularity.MONTH" not in sig

    def test_string_vs_none_vs_bool_disambiguated(self):
        assert cache_key_signature(("x",)) != cache_key_signature((None,))
        assert cache_key_signature((True,)) != cache_key_signature(("True",))
        assert cache_key_signature((1,)) != cache_key_signature(("1",))

    def test_nested_tuples_flatten_unambiguously(self):
        assert cache_key_signature((("a", "b"), "c")) != cache_key_signature(
            ("a", ("b", "c"))
        )

    def test_unstable_objects_are_rejected(self):
        with pytest.raises(TypeError):
            cache_key_signature((object(),))


class TestDiskCacheTier:
    def test_roundtrip_and_counters(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        key = ("fp", GroupBy("city"))
        assert tier.get("transforms", key) is None
        assert tier.put("transforms", key, {"payload": 42})
        assert tier.get("transforms", key) == {"payload": 42}
        stats = tier.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["stores"] == 1 and stats["size"] == 1

    def test_fresh_instance_reads_previous_entries(self, tmp_path):
        DiskCacheTier(tmp_path).put("results", ("fp", 5), [1, 2, 3])
        assert DiskCacheTier(tmp_path).get("results", ("fp", 5)) == [1, 2, 3]

    def test_truncated_entry_degrades_to_miss(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        key = ("fp", "k")
        tier.put("features", key, list(range(100)))
        path = tier._path("features", key)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        fresh = DiskCacheTier(tmp_path)
        assert fresh.get("features", key) is None
        assert fresh.stats()["errors"] == 1
        # the corrupt file is reclaimed, so the next read is a plain miss
        assert not os.path.exists(path)

    def test_garbage_entry_degrades_to_miss(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        key = ("fp", "k")
        tier.put("features", key, "value")
        with open(tier._path("features", key), "wb") as handle:
            handle.write(b"not an entry at all")
        assert DiskCacheTier(tmp_path).get("features", key) is None

    def test_bad_checksum_degrades_to_miss(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        key = ("fp", "k")
        tier.put("features", key, "value")
        path = tier._path("features", key)
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        blob[-1] ^= 0xFF  # flip a payload bit; header checksum now fails
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        assert DiskCacheTier(tmp_path).get("features", key) is None

    def test_version_bump_invalidates_cleanly(self, tmp_path, monkeypatch):
        tier = DiskCacheTier(tmp_path)
        tier.put("transforms", ("fp", "k"), "old")
        import repro.engine.persistent as persistent

        monkeypatch.setattr(
            persistent, "PERSISTENT_CACHE_SCHEMA_VERSION",
            PERSISTENT_CACHE_SCHEMA_VERSION + 1,
        )
        bumped = DiskCacheTier(tmp_path)
        # entries of the old version are simply never addressed
        assert bumped.get("transforms", ("fp", "k")) is None
        assert bumped.entry_count() == 0

    def test_eviction_respects_budget_oldest_first(self, tmp_path):
        tier = DiskCacheTier(tmp_path, max_bytes=2000)
        for i in range(40):
            tier.put("features", ("fp", f"k{i}"), list(range(100)))
        stats = tier.stats()
        assert stats["bytes"] <= 2000
        assert stats["evictions"] > 0
        # the newest entry must have survived
        assert tier.get("features", ("fp", "k39")) is not None

    def test_disabled_level_is_skipped(self, tmp_path):
        tier = DiskCacheTier(tmp_path, levels=("transforms",))
        assert not tier.put("features", ("fp", "k"), "v")
        assert tier.get("features", ("fp", "k")) is None
        assert tier.entry_count() == 0

    def test_unpicklable_value_is_skipped_silently(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        assert not tier.put("results", ("fp", "k"), lambda: None)
        assert tier.entry_count() == 0

    def test_clear_removes_everything(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        tier.put("transforms", ("fp", "a"), 1)
        tier.put("results", ("fp", "b"), 2)
        assert tier.clear() == 2
        assert tier.entry_count() == 0
        assert tier.total_bytes() == 0

    def test_pickle_roundtrip_drops_counters(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        tier.put("transforms", ("fp", "k"), "v")
        tier.get("transforms", ("fp", "k"))
        clone = pickle.loads(pickle.dumps(tier))
        assert clone.directory == tier.directory
        assert clone.stats()["hits"] == 0  # worker-local accounting
        assert clone.get("transforms", ("fp", "k")) == "v"


class TestMultiLevelIntegration:
    def test_fetch_promotes_disk_hit_into_memory(self, tmp_path):
        DiskCacheTier(tmp_path).put("transforms", ("fp", "k"), "v")
        cache = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        assert cache.fetch("transforms", ("fp", "k")) == "v"
        assert cache.disk.stats()["hits"] == 1
        # promoted: the second fetch is a pure memory hit
        assert cache.fetch("transforms", ("fp", "k")) == "v"
        assert cache.disk.stats()["hits"] == 1
        assert cache.transforms.hits == 1

    def test_store_writes_through_unless_opted_out(self, tmp_path):
        cache = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        cache.store("results", ("fp", "a"), 1)
        cache.store("results", ("fp", "b"), 2, disk=False)
        assert cache.disk.entry_count("results") == 1

    def test_stats_by_level_gains_disk_entry(self, tmp_path):
        cache = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        by_level = cache.stats_by_level()
        assert "disk" in by_level
        assert {"hits", "misses", "stores", "size", "bytes"} <= set(
            by_level["disk"]
        )
        # the aggregate rollup stays memory-only (stable meaning)
        assert "stores" not in by_level["aggregate"]

    def test_no_disk_keeps_legacy_shape(self):
        by_level = MultiLevelCache().stats_by_level()
        assert set(by_level) == {
            "transforms", "features", "results", "aggregate",
        }

    def test_prewarm_loads_hottest_entries(self, tmp_path):
        writer = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        for i in range(5):
            writer.store("transforms", ("fp", f"k{i}"), i)
        fresh = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        loaded = fresh.prewarm()
        assert loaded["transforms"] == 5
        # prewarmed entries answer from memory, not disk
        assert fresh.transforms.get(("fp", "k3")) == 3

    def test_prewarm_without_disk_is_noop(self):
        assert MultiLevelCache().prewarm() == {}


def _selection_entry(table, cache):
    result = select_top_k(table, k=5, provenance=True, cache=cache)
    return entry_from_result(table.name, table.fingerprint(), result)


class TestByteIdenticalTopK:
    """The ISSUE's correctness gate: golden-snapshot identity with the
    disk tier on / off / corrupted."""

    def test_topk_identical_disk_on_off_corrupted(self, tmp_path, flights_table):
        baseline = build_snapshot(
            [_selection_entry(flights_table, None)], k=5
        )

        # cold disk tier (populates)
        cache = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        cold = build_snapshot([_selection_entry(flights_table, cache)], k=5)
        assert diff_snapshots(baseline, cold)["clean"]

        # warm disk tier in a fresh cache (serves from disk)
        warm_cache = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        warm = build_snapshot(
            [_selection_entry(flights_table, warm_cache)], k=5
        )
        assert warm_cache.disk.stats()["hits"] > 0
        assert diff_snapshots(baseline, warm)["clean"]

        # corrupt every entry: selection must silently recompute
        for root, _dirs, files in os.walk(tmp_path):
            for name in files:
                if name.endswith(".entry"):
                    with open(os.path.join(root, name), "wb") as handle:
                        handle.write(b"garbage")
        corrupt_cache = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        corrupted = build_snapshot(
            [_selection_entry(flights_table, corrupt_cache)], k=5
        )
        assert diff_snapshots(baseline, corrupted)["clean"]


def _hammer_writer(directory, worker_id, n_writes):
    from repro.engine import DiskCacheTier

    tier = DiskCacheTier(directory)
    payload = {"worker": worker_id, "data": list(range(500))}
    for _ in range(n_writes):
        tier.put("results", ("shared", "entry"), payload)


class TestConcurrentWriters:
    def test_two_processes_never_produce_a_torn_read(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        workers = [
            ctx.Process(target=_hammer_writer, args=(str(tmp_path), i, 25))
            for i in range(2)
        ]
        for worker in workers:
            worker.start()
        # read concurrently while both writers race on the same entry
        reader = DiskCacheTier(tmp_path)
        observed = 0
        while any(w.is_alive() for w in workers):
            value = reader.get("results", ("shared", "entry"))
            if value is not None:
                observed += 1
                # a torn write would fail the checksum (miss), and a
                # surviving read must always be a complete payload
                assert value["data"] == list(range(500))
        for worker in workers:
            worker.join()
        assert reader.stats()["errors"] == 0
        final = reader.get("results", ("shared", "entry"))
        assert final is not None and final["data"] == list(range(500))


def _stale_writer(directory, old_fp, n_writes):
    """Concurrently re-publish stale pre-append entries under the old
    fingerprint while the parent queries the grown table."""
    from repro.engine import DiskCacheTier
    from repro.language.ast import GroupBy

    tier = DiskCacheTier(directory)
    for i in range(n_writes):
        tier.put("transforms", (old_fp, GroupBy("city")), {"stale": i})
        tier.put("results", (old_fp, ("k", 5)), {"stale": i})


class TestAppendStaleness:
    """Satellite: a pre-append cache entry must never be served for a
    post-append fingerprint — appends change the fingerprint, and every
    cache level keys on it."""

    def _grown(self, table):
        return table.append_rows(
            [["d", 7.0, 3.0], ["a", 8.0, 2.0], ["e", 9.0, 1.0]]
        )

    def test_append_changes_the_cache_key(self):
        table = _table()
        grown = self._grown(table)
        assert grown.fingerprint() != table.fingerprint()
        # ...and the change is content-derived, not instance-derived:
        again = _table().append_rows(
            [["d", 7.0, 3.0], ["a", 8.0, 2.0], ["e", 9.0, 1.0]]
        )
        assert again.fingerprint() == grown.fingerprint()

    def test_poisoned_pre_append_entries_never_served(self, tmp_path):
        table = _table()
        cache = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        select_top_k(table, k=5, cache=cache)  # populate under old fp

        # Poison every entry (memory + disk). If any pre-append entry
        # were served for the grown table, selection would crash or
        # drift; instead it must recompute cleanly.
        for level_name in ("transforms", "features", "results"):
            level = getattr(cache, level_name)
            for key in list(level):
                level.put(key, "poison")
                cache.disk.put(level_name, key, "poison")

        grown = self._grown(table)
        baseline = build_snapshot(
            [_selection_entry(grown, None)], k=5
        )
        poisoned = build_snapshot(
            [_selection_entry(grown, cache)], k=5
        )
        assert diff_snapshots(baseline, poisoned)["clean"]

        # A fresh process-equivalent (new cache over the same poisoned
        # disk directory) is just as safe.
        fresh = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        refetched = build_snapshot([_selection_entry(grown, fresh)], k=5)
        assert diff_snapshots(baseline, refetched)["clean"]

    def test_incremental_session_on_poisoned_disk(self, tmp_path):
        from repro import IncrementalSession

        table = _table("living")
        cache = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        session = IncrementalSession(table, k=4, cache=cache)
        old_fp = table.fingerprint()
        # Poison everything published under the pre-append fingerprint,
        # in memory and on disk.  Post-append lookups key on the *new*
        # fingerprint, so none of these may ever be served again.
        for key in list(cache.transforms):
            cache.transforms.put(key, "poison")
            cache.disk.put("transforms", key, "poison")
        session.append([["d", 7.0, 3.0], ["e", 8.0, 2.0]])
        assert session.table.fingerprint() != old_fp
        assert session.verify()["kind"] == "identical"

    def test_concurrent_stale_writer_never_pollutes_grown_reads(self, tmp_path):
        table = _table()
        grown = self._grown(table)
        baseline = build_snapshot([_selection_entry(grown, None)], k=5)

        ctx = multiprocessing.get_context("spawn")
        writer = ctx.Process(
            target=_stale_writer,
            args=(str(tmp_path), table.fingerprint(), 40),
        )
        writer.start()
        try:
            while writer.is_alive():
                cache = MultiLevelCache(disk=DiskCacheTier(tmp_path))
                snapshot = build_snapshot(
                    [_selection_entry(grown, cache)], k=5
                )
                assert diff_snapshots(baseline, snapshot)["clean"]
        finally:
            writer.join()
        # One last read after the writer finished flooding stale keys.
        cache = MultiLevelCache(disk=DiskCacheTier(tmp_path))
        final = build_snapshot([_selection_entry(grown, cache)], k=5)
        assert diff_snapshots(baseline, final)["clean"]
