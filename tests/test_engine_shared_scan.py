"""Tests for the shared-scan batch aggregation engine."""

import numpy as np
import pytest

from repro.dataset import ColumnType
from repro.engine import AggregateRequest, SharedScanEngine
from repro.errors import ValidationError
from repro.language import (
    AggregateOp,
    BinByGranularity,
    BinGranularity,
    BinIntoBuckets,
    GroupBy,
)


@pytest.fixture
def requests(flights_table):
    group = GroupBy("carrier")
    by_hour = BinByGranularity("scheduled", BinGranularity.HOUR)
    bins = BinIntoBuckets("departure_delay", 10)
    return [
        AggregateRequest(group, AggregateOp.SUM, "passengers"),
        AggregateRequest(group, AggregateOp.AVG, "passengers"),
        AggregateRequest(group, AggregateOp.AVG, "departure_delay"),
        AggregateRequest(group, AggregateOp.CNT),
        AggregateRequest(by_hour, AggregateOp.AVG, "departure_delay"),
        AggregateRequest(by_hour, AggregateOp.SUM, "arrival_delay"),
        AggregateRequest(bins, AggregateOp.CNT),
    ]


class TestCorrectness:
    def test_shared_equals_naive(self, flights_table, requests):
        engine = SharedScanEngine(flights_table)
        shared = engine.execute_batch(requests)
        naive = engine.execute_naive(requests)
        assert set(shared) == set(naive)
        for request in requests:
            labels_s, values_s = shared[request]
            labels_n, values_n = naive[request]
            assert labels_s == labels_n
            assert np.allclose(values_s, values_n)

    def test_matches_executor(self, flights_table):
        from repro.language import ChartType, VisQuery, execute

        request = AggregateRequest(
            GroupBy("carrier"), AggregateOp.SUM, "passengers"
        )
        engine = SharedScanEngine(flights_table)
        labels, values = engine.execute_batch([request])[request]
        reference = execute(
            VisQuery(chart=ChartType.BAR, x="carrier", y="passengers",
                     transform=GroupBy("carrier"), aggregate=AggregateOp.SUM),
            flights_table,
        )
        assert labels == reference.x_labels
        assert np.allclose(values, reference.y_values)

    def test_avg_of_empty_bucket_is_zero(self, flights_table):
        # CNT never divides; AVG guards empty buckets.
        request = AggregateRequest(
            BinIntoBuckets("departure_delay", 500), AggregateOp.AVG, "passengers"
        )
        engine = SharedScanEngine(flights_table)
        __, values = engine.execute_batch([request])[request]
        assert np.isfinite(values).all()


class TestSharing:
    def test_one_transform_pass_per_distinct_transform(self, flights_table, requests):
        engine = SharedScanEngine(flights_table)
        engine.execute_batch(requests)
        # 3 distinct transforms in the fixture.
        assert engine.stats.transforms_applied == 3

    def test_column_pass_shared_between_sum_and_avg(self, flights_table):
        group = GroupBy("carrier")
        engine = SharedScanEngine(flights_table)
        engine.execute_batch(
            [
                AggregateRequest(group, AggregateOp.SUM, "passengers"),
                AggregateRequest(group, AggregateOp.AVG, "passengers"),
            ]
        )
        assert engine.stats.column_passes == 1

    def test_naive_does_more_work(self, flights_table, requests):
        engine = SharedScanEngine(flights_table)
        engine.execute_batch(requests)
        shared_work = engine.stats.transforms_applied
        engine.stats.reset()
        engine.execute_naive(requests)
        assert engine.stats.transforms_applied == len(requests) > shared_work


class TestValidation:
    def test_sum_requires_y(self):
        with pytest.raises(ValidationError):
            AggregateRequest(GroupBy("carrier"), AggregateOp.SUM)

    def test_non_numeric_y_rejected(self, flights_table):
        request = AggregateRequest(
            GroupBy("carrier"), AggregateOp.SUM, "destination"
        )
        engine = SharedScanEngine(flights_table)
        with pytest.raises(ValidationError):
            engine.execute_batch([request])
