"""Smoke tests: the fast examples run end-to-end without errors.

The slow examples (flight_delays, reproduce_paper) are exercised by the
benchmark suite's equivalent code paths; here we execute the quick ones
exactly as a user would.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(name, None)
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "VISUALIZE" in out
        assert "candidate charts" in out

    def test_query_language(self, capsys):
        out = _run_example("query_language", capsys)
        assert "Parsed query" in out
        assert "Feature vector F" in out

    def test_keyword_search(self, capsys):
        out = _run_example("keyword_search", capsys)
        assert "average delay by hour" in out
        assert "score=" in out

    def test_expert_rules(self, capsys):
        out = _run_example("expert_rules", capsys)
        assert "dominance graph" in out
        assert "Progressive top-4" in out

    def test_multi_column(self, capsys):
        out = _run_example("multi_column", capsys)
        assert "legend:" in out
        assert "multi-series" in out
