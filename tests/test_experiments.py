"""Integration tests: the Section VI experiment protocols end-to-end.

These use a miniature session-scoped ExperimentSetup (tiny scales) and
assert the *shape* claims the paper makes, not absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments import (
    CONFIGURATIONS,
    figure9_top_results,
    figure10,
    figure11,
    figure11_by_chart,
    figure12,
    table3,
    table4,
    table6,
    table7,
    table8,
)


class TestRecognitionExperiments:
    def test_figure10_shape(self, experiment_setup):
        result = figure10(experiment_setup)
        assert set(result) == {"bayes", "svm", "decision_tree"}
        for metrics in result.values():
            assert set(metrics) == {"precision", "recall", "f1"}
            assert all(0 <= v <= 1 for v in metrics.values())
        # The paper's headline: the decision tree wins on F-measure.
        assert result["decision_tree"]["f1"] >= result["bayes"]["f1"]
        assert result["decision_tree"]["f1"] >= result["svm"]["f1"]
        assert result["decision_tree"]["f1"] > 0.6

    def test_table7_covers_chart_types(self, experiment_setup):
        result = table7(experiment_setup)
        assert set(result) == {"bar", "line", "pie", "scatter"}

    def test_table8_rows_per_dataset(self, experiment_setup):
        result = table8(experiment_setup)
        assert len(result) == len(experiment_setup.test)
        for by_chart in result.values():
            for models in by_chart.values():
                assert set(models) == {"bayes", "svm", "decision_tree"}


class TestRankingExperiments:
    def test_figure11_shape(self, experiment_setup):
        result = figure11(experiment_setup)
        assert set(result) == {"partial_order", "learning_to_rank", "hybrid"}
        for values in result.values():
            assert len(values) == len(experiment_setup.test)
            assert all(0 <= v <= 1 + 1e-9 for v in values)
        means = {m: float(np.mean(v)) for m, v in result.items()}
        # The paper's claim: partial order beats learning to rank.
        assert means["partial_order"] >= means["learning_to_rank"] - 0.02
        # Hybrid is competitive with the best single method.
        assert means["hybrid"] >= min(means["partial_order"], means["learning_to_rank"]) - 0.02

    def test_figure11_by_chart_structure(self, experiment_setup):
        result = figure11_by_chart(experiment_setup)
        assert set(result) == {"bar", "line", "pie", "scatter"}
        for per_method in result.values():
            for values in per_method.values():
                assert all(0 <= v <= 1 + 1e-9 for v in values)


class TestEfficiencyExperiment:
    def test_figure12_shape(self, experiment_setup):
        tables = [a.table for a in experiment_setup.test[:2]]
        rows = figure12(experiment_setup, tables=tables, k=5)
        assert len(rows) == 2 * len(CONFIGURATIONS)
        by_key = {(r.dataset, r.label): r for r in rows}
        for table in tables:
            # Rule-based enumeration prunes candidates vs exhaustive.
            assert (
                by_key[(table.name, "RP")].candidates
                < by_key[(table.name, "EP")].candidates
            )
            for row in rows:
                assert row.total_seconds > 0
                assert 0 <= row.enumerate_fraction <= 1


class TestCoverageExperiment:
    def test_table6_rows(self, experiment_setup):
        rows = table6(experiment_setup, scale=0.04)
        assert len(rows) == 9
        for row in rows:
            assert row.num_published > 0
            if row.covered_at_k is not None:
                assert row.covered_at_k >= row.num_published

    def test_most_usecases_covered(self, experiment_setup):
        rows = table6(experiment_setup, scale=0.04)
        covered = sum(1 for r in rows if r.covered)
        assert covered >= 7  # the pipeline finds what publishers chart

    def test_figure9_returns_descriptions(self, experiment_setup):
        top = figure9_top_results(experiment_setup, scale=0.04, k=6)
        assert len(top) == 6
        assert all(isinstance(t, str) and ":" in t for t in top)


class TestCorpusExperiments:
    def test_table3_statistics(self, experiment_setup):
        stats = table3(experiment_setup)
        assert stats["num_datasets"] == 42
        assert stats["good_charts"] > 0
        assert stats["bad_charts"] > stats["good_charts"]  # bads dominate

    def test_table4_rows(self, experiment_setup):
        rows = table4(experiment_setup)
        assert len(rows) == 10
        assert rows[9]["name"] == "FlyDelay"
        assert all(row["#-charts"] >= 0 for row in rows)
