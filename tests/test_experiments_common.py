"""Invariant tests for the Figure 11 full-list ranking protocols."""

import numpy as np
import pytest

from repro.experiments import ndcg_with_exponential_gain


class TestFullRankings:
    @pytest.mark.parametrize(
        "method",
        ["partial_order_full_ranking", "ltr_full_ranking", "hybrid_full_ranking"],
    )
    def test_rankings_are_permutations(self, experiment_setup, method):
        for annotated in experiment_setup.test[:4]:
            order = getattr(experiment_setup, method)(annotated)
            assert sorted(order) == list(range(len(annotated.nodes)))

    def test_partial_order_puts_classifier_rejects_last(self, experiment_setup):
        annotated = experiment_setup.test[0]
        keep = experiment_setup.decision_tree.predict(annotated.nodes)
        order = experiment_setup.partial_order_full_ranking(annotated)
        n_valid = int(keep.sum())
        # The first n_valid positions are exactly the classifier-valid nodes.
        front = order[:n_valid]
        assert all(keep[i] for i in front)

    def test_hybrid_interpolates(self, experiment_setup):
        """alpha = 0 reduces the hybrid to pure LTR ordering."""
        annotated = experiment_setup.test[0]
        saved = experiment_setup.hybrid_alpha
        try:
            experiment_setup.hybrid_alpha = 0.0
            assert experiment_setup.hybrid_full_ranking(annotated) == list(
                experiment_setup.ltr_full_ranking(annotated)
            )
        finally:
            experiment_setup.hybrid_alpha = saved

    def test_alpha_fit_on_holdout_is_from_grid(self, experiment_setup):
        assert experiment_setup.hybrid_alpha in (
            0.0, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0,
        )


class TestNdcgHelper:
    def test_perfect_order(self):
        assert ndcg_with_exponential_gain([2, 1, 0], [1.0, 2.0, 4.0]) == pytest.approx(1.0)

    def test_worst_order_lower(self):
        best = ndcg_with_exponential_gain([2, 1, 0], [1.0, 2.0, 4.0])
        worst = ndcg_with_exponential_gain([0, 1, 2], [1.0, 2.0, 4.0])
        assert worst < best

    def test_exponential_gain_emphasises_top_grades(self):
        # Swapping a grade-4 with a grade-3 at the front hurts more
        # under exponential gains than linear positions suggest.
        relevance = [4.0, 3.0, 0.0, 0.0]
        good = ndcg_with_exponential_gain([0, 1, 2, 3], relevance)
        swapped = ndcg_with_exponential_gain([1, 0, 2, 3], relevance)
        assert good > swapped

    def test_all_zero_relevance(self):
        assert ndcg_with_exponential_gain([0, 1], [0.0, 0.0]) == 1.0
