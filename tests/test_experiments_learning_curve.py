"""Tests for the label-budget learning curve."""

import pytest

from repro.experiments import recognition_learning_curve


class TestLearningCurve:
    def test_points_sorted_and_nested(self, experiment_setup):
        points = recognition_learning_curve(
            experiment_setup.train,
            experiment_setup.test,
            fractions=(0.2, 0.5, 1.0),
            models=("decision_tree",),
        )
        assert [p.fraction for p in points] == sorted(p.fraction for p in points)
        budgets = [p.num_labels for p in points]
        assert budgets == sorted(budgets)

    def test_f1_in_unit_range(self, experiment_setup):
        points = recognition_learning_curve(
            experiment_setup.train,
            experiment_setup.test,
            fractions=(0.5, 1.0),
            models=("decision_tree", "bayes"),
        )
        for point in points:
            for value in point.f1_per_model.values():
                assert 0.0 <= value <= 1.0

    def test_full_budget_uses_all_labels(self, experiment_setup):
        points = recognition_learning_curve(
            experiment_setup.train,
            experiment_setup.test,
            fractions=(1.0,),
            models=("decision_tree",),
        )
        total = sum(len(a.nodes) for a in experiment_setup.train)
        assert points[-1].num_labels == total

    def test_deterministic_given_seed(self, experiment_setup):
        kwargs = dict(fractions=(0.3,), models=("decision_tree",), seed=4)
        a = recognition_learning_curve(
            experiment_setup.train, experiment_setup.test, **kwargs
        )
        b = recognition_learning_curve(
            experiment_setup.train, experiment_setup.test, **kwargs
        )
        assert a[0].f1_per_model == b[0].f1_per_model

    def test_empty_corpora_rejected(self):
        with pytest.raises(ValueError):
            recognition_learning_curve([], [])
