"""Tests for the one-shot reproduction report."""

import pytest

from repro.experiments import run_reproduction, write_markdown_report


@pytest.fixture(scope="module")
def result(experiment_setup):
    # Reuse the session-scoped miniature setup to keep this fast.
    return run_reproduction(setup=experiment_setup, usecase_scale=0.03)


class TestRunReproduction:
    def test_all_sections_populated(self, result):
        assert result.corpus_stats["num_datasets"] == 42
        assert len(result.testing_datasets) == 10
        assert set(result.recognition) == {"bayes", "svm", "decision_tree"}
        assert set(result.ranking_ndcg) == {
            "partial_order", "learning_to_rank", "hybrid",
        }
        assert len(result.coverage) == 9
        assert len(result.efficiency) == 40  # 10 tables x 4 configs
        assert result.elapsed_seconds > 0

    def test_shape_summary_keys(self, result):
        summary = result.shape_summary()
        assert len(summary) == 3
        assert all(isinstance(v, bool) for v in summary.values())

    def test_headline_shapes_hold_at_mini_scale(self, result):
        # Even the miniature setup must reproduce the pruning claim;
        # the learned-model claims are asserted at benchmark scale.
        assert result.rules_beat_exhaustive()


class TestMarkdownReport:
    def test_report_contains_every_section(self, result):
        text = write_markdown_report(result)
        for heading in (
            "# DeepEye reproduction report",
            "## Headline shapes",
            "## Corpus",
            "## Recognition",
            "## Ranking NDCG",
            "## Use-case coverage",
            "## Efficiency",
        ):
            assert heading in text

    def test_report_written_to_file(self, result, tmp_path):
        path = tmp_path / "report.md"
        write_markdown_report(result, path)
        assert path.exists()
        assert path.read_text().startswith("# DeepEye reproduction report")

    def test_report_is_valid_markdown_tables(self, result):
        text = write_markdown_report(result)
        for line in text.splitlines():
            if line.startswith("|") and not line.startswith("|-"):
                # Every table row has a consistent pipe structure.
                assert line.endswith("|")
