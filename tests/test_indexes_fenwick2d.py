"""Unit tests for the 2-D Fenwick aggregate tree."""

import numpy as np
import pytest

from repro.indexes import Fenwick2D


def _brute(points, qx, qy):
    count = sum(1 for x, y, _ in points if x <= qx and y <= qy)
    total = sum(v for x, y, v in points if x <= qx and y <= qy)
    return count, total


class TestFenwick2D:
    def test_empty(self):
        tree = Fenwick2D([0.5], [0.5])
        assert tree.query(1.0, 1.0) == (0.0, 0.0)

    def test_single_point(self):
        tree = Fenwick2D([0.3], [0.7])
        tree.add(0.3, 0.7, 1.0, 42.0)
        assert tree.query(0.3, 0.7) == (1.0, 42.0)
        assert tree.query(0.29, 1.0) == (0.0, 0.0)
        assert tree.query(1.0, 0.69) == (0.0, 0.0)

    def test_unknown_coordinates_rejected_on_add(self):
        tree = Fenwick2D([0.1], [0.1])
        with pytest.raises(KeyError):
            tree.add(0.2, 0.1, 1.0, 0.0)
        with pytest.raises(KeyError):
            tree.add(0.1, 0.2, 1.0, 0.0)

    def test_query_coordinates_unrestricted(self):
        tree = Fenwick2D([0.5], [0.5])
        tree.add(0.5, 0.5, 1.0, 3.0)
        assert tree.query(0.75, 99.0) == (1.0, 3.0)
        assert tree.query(-1.0, 0.5) == (0.0, 0.0)

    def test_accumulates_duplicates(self):
        tree = Fenwick2D([0.5], [0.5])
        tree.add(0.5, 0.5, 1.0, 2.0)
        tree.add(0.5, 0.5, 1.0, 3.0)
        assert tree.query(0.5, 0.5) == (2.0, 5.0)

    @pytest.mark.parametrize("n", [10, 100, 400])
    def test_matches_brute_force(self, n):
        rng = np.random.default_rng(n)
        xs = np.round(rng.random(n), 2)  # duplicates likely
        ys = np.round(rng.random(n), 2)
        values = rng.normal(size=n)
        tree = Fenwick2D(xs, ys)
        points = []
        for x, y, v in zip(xs, ys, values):
            tree.add(x, y, 1.0, float(v))
            points.append((x, y, float(v)))
        for qx, qy in rng.random((25, 2)):
            count, total = tree.query(qx, qy)
            expected_count, expected_total = _brute(points, qx, qy)
            assert count == expected_count
            assert total == pytest.approx(expected_total, abs=1e-9)

    def test_incremental_queries_interleaved(self):
        rng = np.random.default_rng(7)
        xs = rng.random(60)
        ys = rng.random(60)
        tree = Fenwick2D(xs, ys)
        points = []
        for i in range(60):
            count, total = tree.query(xs[i], ys[i])
            expected = _brute(points, xs[i], ys[i])
            assert (count, pytest.approx(expected[1], abs=1e-9)) == (
                expected[0],
                total,
            ) or (count == expected[0] and abs(total - expected[1]) < 1e-9)
            tree.add(xs[i], ys[i], 1.0, float(i))
            points.append((xs[i], ys[i], float(i)))
