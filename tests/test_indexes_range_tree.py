"""Unit tests for the dominance-reporting index structures."""

import numpy as np
import pytest

from repro.indexes import FenwickDominanceIndex, RangeTree2D


def _brute_force(points, qx, qy):
    return sorted(i for x, y, i in points if x <= qx and y <= qy)


class TestRangeTree2D:
    def test_empty(self):
        tree = RangeTree2D([])
        assert tree.report(1.0, 1.0) == []

    def test_single_point(self):
        tree = RangeTree2D([(0.5, 0.5, 7)])
        assert tree.report(1.0, 1.0) == [7]
        assert tree.report(0.4, 1.0) == []
        assert tree.report(1.0, 0.4) == []

    def test_boundary_inclusive(self):
        tree = RangeTree2D([(0.5, 0.5, 1)])
        assert tree.report(0.5, 0.5) == [1]

    @pytest.mark.parametrize("n", [5, 50, 300])
    def test_matches_brute_force(self, n):
        rng = np.random.default_rng(n)
        points = [(float(x), float(y), i) for i, (x, y) in enumerate(rng.random((n, 2)))]
        tree = RangeTree2D(points)
        for qx, qy in rng.random((20, 2)):
            assert sorted(tree.report(qx, qy)) == _brute_force(points, qx, qy)

    def test_duplicate_coordinates(self):
        points = [(0.5, 0.5, i) for i in range(10)]
        tree = RangeTree2D(points)
        assert sorted(tree.report(0.5, 0.5)) == list(range(10))

    def test_len(self):
        assert len(RangeTree2D([(0, 0, 0), (1, 1, 1)])) == 2


class TestFenwickDominanceIndex:
    def test_insert_then_report(self):
        index = FenwickDominanceIndex([0.1, 0.5, 0.9])
        index.insert(0.1, 0.2, 0)
        index.insert(0.5, 0.8, 1)
        assert sorted(index.report(0.5, 0.9)) == [0, 1]
        assert index.report(0.5, 0.5) == [0]
        assert index.report(0.05, 1.0) == []

    def test_unknown_x_rejected(self):
        index = FenwickDominanceIndex([0.1])
        with pytest.raises(KeyError):
            index.insert(0.3, 0.0, 0)

    def test_query_x_need_not_be_in_universe(self):
        index = FenwickDominanceIndex([0.1, 0.9])
        index.insert(0.1, 0.1, 0)
        assert index.report(0.5, 1.0) == [0]

    @pytest.mark.parametrize("n", [5, 80, 250])
    def test_matches_brute_force_incrementally(self, n):
        rng = np.random.default_rng(n + 1)
        xs = rng.random(n)
        ys = rng.random(n)
        index = FenwickDominanceIndex(xs)
        inserted = []
        for i in range(n):
            expected = _brute_force(inserted, xs[i], ys[i])
            assert sorted(index.report(xs[i], ys[i])) == expected
            index.insert(xs[i], ys[i], i)
            inserted.append((xs[i], ys[i], i))

    def test_duplicate_x_values(self):
        index = FenwickDominanceIndex([0.5, 0.5, 0.5])
        index.insert(0.5, 0.1, 0)
        index.insert(0.5, 0.2, 1)
        assert sorted(index.report(0.5, 0.15)) == [0]
