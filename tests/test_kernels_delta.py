"""Differential tests for the append-delta merge kernels.

The living-table invariant: for every transform kernel and any split of
a column into a prefix (old rows) and a suffix (appended rows),

    merge_delta(transform, kernel(old), full, delta) == kernel(full)

bit-for-bit — same labels, sort keys, representative values, bucket
order, and per-row assignment.  Hypothesis drives the splits across
every column type, including NaN-only and empty append batches, batches
that introduce new labels/buckets, and numeric batches that grow the
binning range (the rebuild path).  The DeltaMerge bookkeeping
(``old_positions`` / ``delta_assignment``) is additionally checked to
reproduce the full kernel's per-bucket counts, since that is exactly
what the incremental aggregate maintainer folds with.
"""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import Column, ColumnType
from repro.errors import ValidationError
from repro.language import (
    BinGranularity,
    bin_numeric,
    bin_temporal,
    bin_udf,
    group_categorical,
)
from repro.language.ast import (
    BinByGranularity,
    BinByUDF,
    BinIntoBuckets,
    GroupBy,
)
from repro.language.binning import DeltaMerge, TransformResult, merge_delta


def _split(name, ctype, values, cut):
    """(old column, full column, delta column) for a prefix/suffix split."""
    values = np.asarray(values, dtype=object if ctype is ColumnType.CATEGORICAL else np.float64)
    cut = min(cut, len(values))
    return (
        Column(name, ctype, values[:cut]),
        Column(name, ctype, values),
        Column(name, ctype, values[cut:]),
    )


def _assert_merge_identical(merge: DeltaMerge, scratch: TransformResult):
    """The merged result is bit-identical to the from-scratch kernel and
    the merge bookkeeping reproduces its per-bucket row counts."""
    result = merge.result
    assert result.labels == scratch.labels
    assert np.array_equal(result.sort_keys, scratch.sort_keys, equal_nan=True)
    assert np.array_equal(result.values, scratch.values, equal_nan=True)
    assert np.array_equal(result.assignment, scratch.assignment)
    assert result == scratch  # TransformResult.__eq__, the session's check
    if not merge.rebuilt:
        old_rows = result.num_rows - len(merge.delta_assignment)
        # Per-bucket counts of the old prefix in *old* index space
        # (gathered back through the positions map), scattered and
        # extended exactly as the incremental aggregate maintainer does.
        old_counts = np.bincount(
            scratch.assignment[:old_rows], minlength=result.num_buckets
        )[merge.old_positions]
        counts = np.zeros(result.num_buckets, dtype=np.int64)
        counts[merge.old_positions] = old_counts
        counts += np.bincount(
            merge.delta_assignment, minlength=result.num_buckets
        )
        assert np.array_equal(
            counts, np.bincount(scratch.assignment, minlength=result.num_buckets)
        )


_labels = st.sampled_from(["ORD", "LAX", "SFO", "NYC", "ATL", ""])
_finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
_seconds = st.floats(min_value=-3e9, max_value=3e9, allow_nan=False)


class TestGroupByDelta:
    @given(st.lists(_labels, max_size=120), st.integers(min_value=0, max_value=120))
    @settings(max_examples=120, deadline=None)
    def test_categorical_split_matches_full(self, labels, cut):
        old, full, delta = _split("c", ColumnType.CATEGORICAL, labels, cut)
        merge = merge_delta(GroupBy("c"), group_categorical(old), full, delta)
        _assert_merge_identical(merge, group_categorical(full))

    def test_new_labels_append_in_first_appearance_order(self):
        old, full, delta = _split(
            "c", ColumnType.CATEGORICAL,
            ["b", "a", "b", "z", "q", "a", "z"], 3,
        )
        merge = merge_delta(GroupBy("c"), group_categorical(old), full, delta)
        assert merge.result.labels == ("b", "a", "z", "q")
        assert merge.new_buckets == 2
        assert not merge.remapped  # first-appearance order never shifts
        _assert_merge_identical(merge, group_categorical(full))

    @given(st.lists(st.sampled_from([0.0, 1.5, 86400.0, -7.0]), max_size=60),
           st.integers(min_value=0, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_temporal_group_split_matches_full(self, seconds, cut):
        old, full, delta = _split("t", ColumnType.TEMPORAL, seconds, cut)
        merge = merge_delta(GroupBy("t"), group_categorical(old), full, delta)
        _assert_merge_identical(merge, group_categorical(full))

    def test_nan_only_append_batch_raises_like_scratch(self):
        old, full, delta = _split(
            "t", ColumnType.TEMPORAL, [1.0, 2.0, np.nan, np.nan], 2
        )
        state = group_categorical(old)
        with pytest.raises(ValidationError):
            merge_delta(GroupBy("t"), state, full, delta)
        with pytest.raises(ValidationError):
            group_categorical(full)


class TestBinTemporalDelta:
    @given(
        st.lists(_seconds, max_size=100),
        st.integers(min_value=0, max_value=100),
        st.sampled_from(list(BinGranularity)),
    )
    @settings(max_examples=120, deadline=None)
    def test_split_matches_full(self, seconds, cut, granularity):
        old, full, delta = _split("t", ColumnType.TEMPORAL, seconds, cut)
        merge = merge_delta(
            BinByGranularity("t", granularity),
            bin_temporal(old, granularity),
            full,
            delta,
        )
        _assert_merge_identical(merge, bin_temporal(full, granularity))

    def test_interleaving_keys_remap_old_assignment(self):
        # Old rows cover Mar/Jul; the delta inserts Jan and May, which
        # sort *between* existing buckets — positions must shift.
        stamps = [
            dt.datetime(2021, 3, 2), dt.datetime(2021, 7, 9),
            dt.datetime(2021, 1, 1), dt.datetime(2021, 5, 5),
        ]
        seconds = [(s - dt.datetime(1970, 1, 1)).total_seconds() for s in stamps]
        old, full, delta = _split("t", ColumnType.TEMPORAL, seconds, 2)
        merge = merge_delta(
            BinByGranularity("t", BinGranularity.MONTH),
            bin_temporal(old, BinGranularity.MONTH),
            full, delta,
        )
        assert merge.remapped
        assert merge.result.labels == ("2021-01", "2021-03", "2021-05", "2021-07")
        _assert_merge_identical(merge, bin_temporal(full, BinGranularity.MONTH))

    def test_empty_append_batch_is_unchanged(self):
        old, full, delta = _split("t", ColumnType.TEMPORAL, [0.0, 86400.0], 2)
        state = bin_temporal(old, BinGranularity.DAY)
        merge = merge_delta(
            BinByGranularity("t", BinGranularity.DAY), state, full, delta
        )
        assert merge.new_buckets == 0 and not merge.rebuilt
        _assert_merge_identical(merge, bin_temporal(full, BinGranularity.DAY))


class TestBinNumericDelta:
    @given(
        st.lists(_finite, max_size=120),
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=1, max_value=30),
        st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_split_matches_full(self, values, cut, n, pass_extrema):
        old, full, delta = _split("v", ColumnType.NUMERICAL, values, cut)
        old_min = float(np.min(old.values)) if pass_extrema and len(old.values) else None
        old_max = float(np.max(old.values)) if pass_extrema and len(old.values) else None
        merge = merge_delta(
            BinIntoBuckets("v", n), bin_numeric(old, n), full, delta,
            old_min, old_max,
        )
        _assert_merge_identical(merge, bin_numeric(full, n))

    def test_in_range_append_merges_without_rebuild(self):
        old, full, delta = _split(
            "v", ColumnType.NUMERICAL, [0.0, 100.0, 12.5, 99.0, 0.1], 2
        )
        merge = merge_delta(
            BinIntoBuckets("v", 10), bin_numeric(old, 10), full, delta,
            0.0, 100.0,
        )
        assert not merge.rebuilt
        _assert_merge_identical(merge, bin_numeric(full, 10))

    def test_range_growth_rebuilds(self):
        old, full, delta = _split(
            "v", ColumnType.NUMERICAL, [0.0, 10.0, -5.0, 25.0], 2
        )
        merge = merge_delta(
            BinIntoBuckets("v", 4), bin_numeric(old, 4), full, delta, 0.0, 10.0
        )
        assert merge.rebuilt
        _assert_merge_identical(merge, bin_numeric(full, 4))

    @given(_finite, st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=80, deadline=None)
    def test_constant_column_growth(self, value, old_rows, new_rows, n):
        # Degenerate old range (single point bucket) extended by more of
        # the same value must stay a point bucket, exactly as scratch.
        values = [value] * (old_rows + new_rows)
        old, full, delta = _split("v", ColumnType.NUMERICAL, values, old_rows)
        merge = merge_delta(
            BinIntoBuckets("v", n), bin_numeric(old, n), full, delta,
            value, value,
        )
        _assert_merge_identical(merge, bin_numeric(full, n))

    def test_nan_only_append_batch_raises_like_scratch(self):
        old, full, delta = _split(
            "v", ColumnType.NUMERICAL, [1.0, 2.0, np.nan], 2
        )
        state = bin_numeric(old, 5)
        with pytest.raises(ValidationError):
            merge_delta(BinIntoBuckets("v", 5), state, full, delta, 1.0, 2.0)
        with pytest.raises(ValidationError):
            bin_numeric(full, 5)

    def test_growth_from_empty_prefix(self):
        old, full, delta = _split("v", ColumnType.NUMERICAL, [3.0, 1.0, 2.0], 0)
        merge = merge_delta(
            BinIntoBuckets("v", 3), bin_numeric(old, 3), full, delta
        )
        _assert_merge_identical(merge, bin_numeric(full, 3))


def _parity_udf(value):
    if isinstance(value, str):
        return value.upper() or "EMPTY"
    return "odd" if (np.isnan(value) or int(value) % 2) else "even"


class TestBinUDFDelta:
    @given(
        st.lists(
            st.one_of(
                st.floats(min_value=-100, max_value=100),
                st.just(float("nan")),
            ),
            max_size=100,
        ),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=120, deadline=None)
    def test_numeric_split_matches_full(self, values, cut):
        old, full, delta = _split("v", ColumnType.NUMERICAL, values, cut)
        transform = BinByUDF("v", "parity", _parity_udf)
        merge = merge_delta(
            transform, bin_udf(old, _parity_udf), full, delta
        )
        _assert_merge_identical(merge, bin_udf(full, _parity_udf))

    @given(st.lists(_labels, max_size=80), st.integers(min_value=0, max_value=80))
    @settings(max_examples=80, deadline=None)
    def test_categorical_split_matches_full(self, labels, cut):
        old, full, delta = _split("c", ColumnType.CATEGORICAL, labels, cut)
        transform = BinByUDF("c", "upper", _parity_udf)
        merge = merge_delta(
            transform, bin_udf(old, _parity_udf), full, delta
        )
        _assert_merge_identical(merge, bin_udf(full, _parity_udf))

    def test_delta_row_lowers_a_bucket_representative(self):
        # The representative is the min value mapping to the label; an
        # appended smaller row must replace it and can reorder buckets.
        values = [10.0, 3.0, 2.0]  # "even", "odd", then "even" again
        old, full, delta = _split("v", ColumnType.NUMERICAL, values, 2)
        merge = merge_delta(
            BinByUDF("v", "parity", _parity_udf),
            bin_udf(old, _parity_udf), full, delta,
        )
        scratch = bin_udf(full, _parity_udf)
        assert scratch.labels == ("even", "odd")
        assert tuple(scratch.sort_keys) == (2.0, 3.0)
        _assert_merge_identical(merge, scratch)

    def test_nan_first_row_keeps_nan_representative(self):
        values = [1.0, np.nan, 2.0, np.nan]
        old, full, delta = _split("v", ColumnType.NUMERICAL, values, 2)
        merge = merge_delta(
            BinByUDF("v", "parity", _parity_udf),
            bin_udf(old, _parity_udf), full, delta,
        )
        _assert_merge_identical(merge, bin_udf(full, _parity_udf))


class TestMergeDeltaDispatch:
    def test_rejects_row_count_mismatch(self):
        old_col = Column("c", ColumnType.CATEGORICAL, ["a", "b"])
        full = Column("c", ColumnType.CATEGORICAL, ["a", "b", "c", "d"])
        delta = Column("c", ColumnType.CATEGORICAL, ["c"])  # 2 + 1 != 4
        with pytest.raises(ValidationError):
            merge_delta(GroupBy("c"), group_categorical(old_col), full, delta)

    def test_unknown_transform_rejected(self):
        class Mystery:
            column = "c"

        old_col = Column("c", ColumnType.CATEGORICAL, ["a"])
        full = Column("c", ColumnType.CATEGORICAL, ["a", "b"])
        delta = Column("c", ColumnType.CATEGORICAL, ["b"])
        with pytest.raises(ValidationError):
            merge_delta(Mystery(), group_categorical(old_col), full, delta)
