"""Differential tests: vectorized kernels == row-wise reference oracles.

The columnar kernels in :mod:`repro.language.binning` must reproduce the
original row-at-a-time implementations bucket-for-bucket — same labels,
sort keys, representatives, bucket order, and per-row assignment — over
every column type, NaN edge rows, constant columns, and empty tables.
The ``_reference_*`` functions are those originals, kept as oracles;
end-to-end, ``select_top_k`` must return identical results whether the
kernels run vectorized or via the oracles, serially, in a pool, or from
a warm cache.
"""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import select_top_k
from repro.dataset import Column, ColumnType, Table
from repro.engine import AggregateRequest, MultiLevelCache, SharedScanEngine
from repro.errors import ValidationError
from repro.language import (
    AggregateOp,
    BinGranularity,
    bin_numeric,
    bin_temporal,
    bin_udf,
    group_categorical,
    use_reference_kernels,
)
from repro.language.ast import BinByGranularity, GroupBy
from repro.language.binning import (
    _reference_bin_numeric,
    _reference_bin_temporal,
    _reference_bin_udf,
    _reference_group_categorical,
    assign_buckets,
)
from repro.obs.kernels import KERNEL_STATS


def _assert_identical(vectorized, reference_buckets):
    """Vectorized TransformResult == compacted row-wise oracle output."""
    reference = assign_buckets(reference_buckets)
    assert vectorized.labels == reference.labels
    assert np.array_equal(
        vectorized.sort_keys, reference.sort_keys, equal_nan=True
    )
    assert np.array_equal(vectorized.values, reference.values, equal_nan=True)
    assert np.array_equal(vectorized.assignment, reference.assignment)


# Epoch-seconds range covering ~1875..2065, i.e. pre- and post-epoch.
_seconds = st.floats(min_value=-3e9, max_value=3e9, allow_nan=False)


class TestTemporalDifferential:
    @given(
        st.lists(_seconds, min_size=1, max_size=150),
        st.sampled_from(list(BinGranularity)),
        st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_reference(self, seconds, granularity, integral):
        values = np.asarray(seconds)
        if integral:
            values = np.round(values)
        column = Column("t", ColumnType.TEMPORAL, values)
        _assert_identical(
            bin_temporal(column, granularity),
            _reference_bin_temporal(column, granularity),
        )

    @pytest.mark.parametrize("granularity", list(BinGranularity))
    def test_empty_column(self, granularity):
        column = Column("t", ColumnType.TEMPORAL, np.empty(0))
        result = bin_temporal(column, granularity)
        assert result.num_buckets == 0 and result.num_rows == 0
        _assert_identical(result, _reference_bin_temporal(column, granularity))

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_rejected_by_both(self, bad):
        column = Column("t", ColumnType.TEMPORAL, np.array([0.0, bad]))
        with pytest.raises(ValidationError):
            bin_temporal(column, BinGranularity.DAY)
        with pytest.raises(ValidationError):
            _reference_bin_temporal(column, BinGranularity.DAY)

    def test_iso_week_year_boundary(self):
        # 2015-12-31 and 2016-01-01 are both ISO week 2015-W53; the
        # classic datetime64-vs-isocalendar trap.
        stamps = [
            dt.datetime(2015, 12, 31),
            dt.datetime(2016, 1, 1),
            dt.datetime(2016, 1, 4),
        ]
        column = Column("t", ColumnType.TEMPORAL, stamps)
        result = bin_temporal(column, BinGranularity.WEEK)
        assert result.labels == ("2015-W53", "2016-W01")
        _assert_identical(
            result, _reference_bin_temporal(column, BinGranularity.WEEK)
        )

    def test_fractional_seconds_round_like_timedelta(self):
        # 59.9999995 s rounds up to the next minute at microsecond
        # precision, exactly as datetime.timedelta does.
        column = Column(
            "t", ColumnType.TEMPORAL, np.array([59.9999995, 59.4, 60.2])
        )
        _assert_identical(
            bin_temporal(column, BinGranularity.MINUTE),
            _reference_bin_temporal(column, BinGranularity.MINUTE),
        )


class TestNumericDifferential:
    @given(
        st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_reference(self, values, n):
        column = Column("v", ColumnType.NUMERICAL, values)
        _assert_identical(
            bin_numeric(column, n), _reference_bin_numeric(column, n)
        )

    @given(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_constant_column(self, value, rows, n):
        column = Column("v", ColumnType.NUMERICAL, np.full(rows, value))
        result = bin_numeric(column, n)
        assert result.num_buckets == 1
        _assert_identical(result, _reference_bin_numeric(column, n))

    def test_empty_column(self):
        column = Column("v", ColumnType.NUMERICAL, np.empty(0))
        _assert_identical(
            bin_numeric(column, 5), _reference_bin_numeric(column, 5)
        )

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_rejected_by_both(self, bad):
        column = Column("v", ColumnType.NUMERICAL, np.array([1.0, bad]))
        with pytest.raises(ValidationError):
            bin_numeric(column, 5)
        with pytest.raises(ValidationError):
            _reference_bin_numeric(column, 5)


class TestGroupAndUDFDifferential:
    @given(
        st.lists(
            st.sampled_from(["ORD", "LAX", "SFO", "NYC", "ATL", ""]),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_group_categorical_matches_reference(self, labels):
        column = Column("c", ColumnType.CATEGORICAL, labels)
        _assert_identical(
            group_categorical(column), _reference_group_categorical(column)
        )

    @given(
        st.lists(
            st.sampled_from([0.0, 1.0, 2.5, -3.0, 86400.0]),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_group_temporal_matches_reference(self, seconds):
        column = Column("t", ColumnType.TEMPORAL, np.asarray(seconds))
        _assert_identical(
            group_categorical(column), _reference_group_categorical(column)
        )

    def test_group_temporal_nan_rejected_by_both(self):
        column = Column("t", ColumnType.TEMPORAL, np.array([1.0, np.nan]))
        with pytest.raises(ValidationError):
            group_categorical(column)
        with pytest.raises(ValidationError):
            _reference_group_categorical(column)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=150,
        ),
        st.integers(min_value=2, max_value=7),
    )
    @settings(max_examples=100, deadline=None)
    def test_udf_numeric_matches_reference(self, values, modulus):
        column = Column("v", ColumnType.NUMERICAL, values)
        udf = lambda v: f"m{int(abs(v)) % modulus}"  # noqa: E731
        _assert_identical(
            bin_udf(column, udf), _reference_bin_udf(column, udf)
        )

    def test_udf_categorical_orders_by_first_appearance(self):
        column = Column(
            "c", ColumnType.CATEGORICAL, ["z", "a", "z", "m", "a"]
        )
        udf = lambda v: v.upper()  # noqa: E731
        result = bin_udf(column, udf)
        assert result.labels == ("Z", "A", "M")
        _assert_identical(result, _reference_bin_udf(column, udf))

    def test_udf_nan_rows_keep_reference_semantics(self):
        # A label whose first row is NaN keeps a NaN representative (no
        # value ever compares below NaN in the row-wise loop) and sorts
        # after every finite-keyed bucket.
        column = Column(
            "v",
            ColumnType.NUMERICAL,
            np.array([np.nan, 1.0, np.nan, 2.0, 1.0]),
        )
        udf = lambda v: "odd" if (np.isnan(v) or int(v) % 2) else "even"  # noqa: E731
        result = bin_udf(column, udf)
        assert result.labels == ("even", "odd")
        assert np.isnan(result.sort_keys[1])
        _assert_identical(result, _reference_bin_udf(column, udf))

    def test_udf_empty_column(self):
        column = Column("v", ColumnType.NUMERICAL, np.empty(0))
        udf = str
        _assert_identical(
            bin_udf(column, udf), _reference_bin_udf(column, udf)
        )


def _random_table(seed: int, rows: int) -> Table:
    rng = np.random.default_rng(seed)
    stamps = [
        dt.datetime(2014, 1, 1)
        + dt.timedelta(seconds=float(s))
        for s in rng.uniform(0, 2 * 365 * 86400, size=rows)
    ]
    return Table.from_dict(
        f"random-{seed}",
        {
            "when": stamps,
            "city": [f"c{int(v)}" for v in rng.integers(0, 6, size=rows)],
            "amount": rng.normal(50, 20, size=rows),
            "count": rng.integers(1, 400, size=rows).astype(float),
        },
    )


class TestEndToEndIdentity:
    """`select_top_k` output is invariant to kernel implementation and
    execution mode — the ISSUE's byte-identical acceptance bar."""

    def _signature(self, result):
        return [
            (
                node.key(),
                node.data.x_labels,
                node.data.x_values,
                node.data.y_values,
            )
            for node in result.nodes
        ]

    @pytest.mark.parametrize("mode", ["rules", "exhaustive"])
    def test_vectorized_matches_reference_kernels(self, mode):
        table = _random_table(11, 90)
        vectorized = select_top_k(table, k=8, enumeration=mode)
        with use_reference_kernels():
            rowwise = select_top_k(table, k=8, enumeration=mode)
        assert self._signature(vectorized) == self._signature(rowwise)
        assert vectorized.order == rowwise.order
        assert vectorized.candidates == rowwise.candidates

    def test_serial_parallel_and_warm_cache_identical(self):
        table = _random_table(23, 80)
        serial = select_top_k(table, k=6)
        pooled = select_top_k(table, k=6, n_jobs=2)
        cache = MultiLevelCache()
        cold = select_top_k(table, k=6, cache=cache)
        warm = select_top_k(table, k=6, cache=cache)
        assert warm.cache_stats["results_hits"] >= 1
        for other in (pooled, cold, warm):
            assert self._signature(other) == self._signature(serial)
            assert other.order == serial.order


class TestSharedScanAgreement:
    """ScanStats and the kernel ledger count the same work (satellite:
    the engine's accounting is wired into the obs counters)."""

    def test_column_passes_equal_y_scan_calls(self, flights_table):
        engine = SharedScanEngine(flights_table)
        requests = [
            AggregateRequest(
                BinByGranularity("scheduled", BinGranularity.MONTH),
                AggregateOp.AVG,
                "arrival_delay",
            ),
            AggregateRequest(
                BinByGranularity("scheduled", BinGranularity.MONTH),
                AggregateOp.SUM,
                "arrival_delay",
            ),
            AggregateRequest(
                BinByGranularity("scheduled", BinGranularity.MONTH),
                AggregateOp.SUM,
                "departure_delay",
            ),
            AggregateRequest(GroupBy("carrier"), AggregateOp.CNT),
        ]
        before = KERNEL_STATS.snapshot()
        engine.stats.reset()
        engine.execute_batch(requests)
        delta = KERNEL_STATS.delta_since(before)
        assert engine.stats.transforms_applied == 2
        # AVG+SUM share one arrival_delay pass; departure_delay adds one.
        assert engine.stats.column_passes == 2
        assert delta["y_scan"]["calls"] == engine.stats.column_passes
        transform_calls = sum(
            delta[k]["calls"]
            for k in ("bin_temporal", "group_categorical")
            if k in delta
        )
        assert transform_calls == engine.stats.transforms_applied
        # One counts bincount per distinct transform.
        assert delta["count_scan"]["calls"] == engine.stats.transforms_applied

    def test_scan_stats_metrics_bridge(self, flights_table):
        from repro.obs import MetricsRegistry

        engine = SharedScanEngine(flights_table)
        engine.execute_batch(
            [AggregateRequest(GroupBy("carrier"), AggregateOp.CNT)]
        )
        registry = MetricsRegistry()
        engine.stats.record_metrics(registry)
        dump = registry.to_json()
        assert dump["shared_scan_transforms_total"]["series"][0]["value"] == 1
        assert dump["shared_scan_column_passes_total"]["series"][0]["value"] == 0


class TestKernelObservability:
    def test_kernels_record_calls_rows_buckets(self):
        column = Column("v", ColumnType.NUMERICAL, np.arange(50.0))
        before = KERNEL_STATS.snapshot()
        bin_numeric(column, 5)
        delta = KERNEL_STATS.delta_since(before)
        assert delta["bin_numeric"]["calls"] == 1
        assert delta["bin_numeric"]["rows"] == 50
        assert delta["bin_numeric"]["buckets"] == 5
        assert delta["bin_numeric"]["seconds"] >= 0.0

    def test_selection_publishes_kernel_metrics(self):
        from repro.obs import MetricsRegistry

        table = _random_table(5, 40)
        registry = MetricsRegistry()
        select_top_k(table, k=3, metrics=registry)
        dump = registry.to_json()
        assert dump["kernel_calls_total"]["type"] == "counter"
        assert dump["kernel_seconds_total"]["type"] == "counter"
        assert dump["kernel_seconds"]["type"] == "histogram"
        # Live histogram samples were streamed during the run.
        assert sum(
            entry["count"] for entry in dump["kernel_seconds"]["series"]
        ) >= 1

    def test_enumerate_span_reports_kernel_split(self):
        from repro.obs import Tracer

        table = _random_table(9, 40)
        tracer = Tracer()
        select_top_k(table, k=3, tracer=tracer)
        root = next(s for s in tracer.spans if s.name == "select_top_k")
        enumerate_span = next(
            s for s in root.children if s.name == "enumerate"
        )
        kernel_attrs = [
            key
            for key in enumerate_span.attributes
            if key.startswith("kernel.") and key.endswith(".seconds")
        ]
        assert kernel_attrs, "enumerate span carries no kernel timings"
