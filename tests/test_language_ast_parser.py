"""Unit tests for the visualization-language AST and parser."""

import pytest

from repro.errors import ParseError
from repro.language import (
    AggregateOp,
    BinByGranularity,
    BinGranularity,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    OrderBy,
    OrderTarget,
    VisQuery,
    parse_query,
)


class TestVisQuery:
    def test_transform_requires_aggregate(self):
        with pytest.raises(ValueError):
            VisQuery(chart=ChartType.BAR, x="a", y="b", transform=GroupBy("a"))

    def test_aggregate_requires_transform(self):
        with pytest.raises(ValueError):
            VisQuery(chart=ChartType.BAR, x="a", y="b", aggregate=AggregateOp.SUM)

    def test_columns_deduplicates(self):
        q = VisQuery(
            chart=ChartType.BAR, x="a", y="a",
            transform=GroupBy("a"), aggregate=AggregateOp.CNT,
        )
        assert q.columns == ("a",)

    def test_queries_are_hashable_and_comparable(self):
        q1 = VisQuery(chart=ChartType.LINE, x="a", y="b",
                      transform=BinIntoBuckets("a", 10), aggregate=AggregateOp.AVG)
        q2 = VisQuery(chart=ChartType.LINE, x="a", y="b",
                      transform=BinIntoBuckets("a", 10), aggregate=AggregateOp.AVG)
        assert q1 == q2
        assert hash(q1) == hash(q2)
        assert len({q1, q2}) == 1

    def test_to_text_renders_paper_syntax(self):
        q = VisQuery(
            chart=ChartType.LINE, x="scheduled", y="departure delay",
            transform=BinByGranularity("scheduled", BinGranularity.HOUR),
            aggregate=AggregateOp.AVG,
            order=OrderBy(OrderTarget.X),
        )
        text = q.to_text("TABLE I")
        assert "VISUALIZE line" in text
        assert "SELECT scheduled, AVG(departure delay)" in text
        assert "FROM TABLE I" in text
        assert "BIN scheduled BY HOUR" in text
        assert "ORDER BY X" in text


class TestParser:
    def test_parses_paper_q1(self):
        parsed = parse_query(
            """
            VISUALIZE line
            SELECT scheduled, AVG(departure delay)
            FROM flights
            BIN scheduled BY HOUR
            ORDER BY scheduled
            """
        )
        q = parsed.query
        assert parsed.table_name == "flights"
        assert q.chart is ChartType.LINE
        assert q.x == "scheduled"
        assert q.y == "departure delay"
        assert q.aggregate is AggregateOp.AVG
        assert q.transform == BinByGranularity("scheduled", BinGranularity.HOUR)
        assert q.order == OrderBy(OrderTarget.X)

    def test_group_by_and_count_alias(self):
        parsed = parse_query(
            "VISUALIZE pie\nSELECT carrier, COUNT(carrier)\nFROM f\nGROUP BY carrier"
        )
        assert parsed.query.aggregate is AggregateOp.CNT
        assert parsed.query.transform == GroupBy("carrier")

    def test_bin_into(self):
        parsed = parse_query(
            "VISUALIZE bar\nSELECT delay, SUM(passengers)\nFROM f\nBIN delay INTO 12"
        )
        assert parsed.query.transform == BinIntoBuckets("delay", 12)

    def test_order_by_y_desc(self):
        parsed = parse_query(
            "VISUALIZE bar\nSELECT c, SUM(v)\nFROM f\nGROUP BY c\nORDER BY v DESC"
        )
        assert parsed.query.order == OrderBy(OrderTarget.Y, descending=True)

    def test_raw_query_without_transform(self):
        parsed = parse_query("VISUALIZE scatter\nSELECT a, b\nFROM f")
        assert parsed.query.transform is None
        assert parsed.query.aggregate is None

    def test_transform_defaults_aggregate_to_count(self):
        parsed = parse_query("VISUALIZE bar\nSELECT c, v\nFROM f\nGROUP BY c")
        assert parsed.query.aggregate is AggregateOp.CNT

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("SELECT a, b\nFROM f", "VISUALIZE"),
            ("VISUALIZE bar\nFROM f", "SELECT"),
            ("VISUALIZE bar\nSELECT a, b", "FROM"),
            ("VISUALIZE donut\nSELECT a, b\nFROM f", "chart type"),
            ("VISUALIZE bar\nSELECT a\nFROM f", "two expressions"),
            ("VISUALIZE bar\nSELECT a, b\nFROM f\nBIN a BY EON", "granularity"),
            ("VISUALIZE bar\nSELECT a, b\nFROM f\nORDER BY zz", "neither"),
            ("VISUALIZE bar\nSELECT a, SUM(b)\nFROM f", "TRANSFORM"),
            ("VISUALIZE bar\nSELECT a, b\nFROM f\nWOBBLE", "unrecognised"),
        ],
    )
    def test_errors(self, text, fragment):
        with pytest.raises(ParseError) as err:
            parse_query(text)
        assert fragment.lower() in str(err.value).lower()

    def test_comments_and_blank_lines_ignored(self):
        parsed = parse_query(
            "-- a comment\nVISUALIZE bar\n\nSELECT a, b\nFROM f\n"
        )
        assert parsed.query.chart is ChartType.BAR
