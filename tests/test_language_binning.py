"""Unit tests for binning, grouping, and aggregation."""

import datetime as dt
import pickle

import numpy as np
import pytest

from repro.dataset import Column, ColumnType
from repro.errors import ValidationError
from repro.language import (
    AggregateOp,
    BinGranularity,
    Bucket,
    TransformResult,
    aggregate,
    assign_buckets,
    bin_numeric,
    bin_temporal,
    bin_udf,
    group_categorical,
)


def _temporal(stamps):
    return Column("t", ColumnType.TEMPORAL, stamps)


class TestTemporalBinning:
    def test_hour_bins_by_hour_of_day(self):
        # The paper: "the rows with the same hour are in the same bucket".
        stamps = [
            dt.datetime(2015, 1, 1, 6, 0),
            dt.datetime(2015, 5, 9, 6, 45),
            dt.datetime(2015, 2, 2, 7, 0),
        ]
        result = bin_temporal(_temporal(stamps), BinGranularity.HOUR)
        assert result.assignment[0] == result.assignment[1]
        assert result.assignment[0] != result.assignment[2]
        assert result.labels[result.assignment[0]] == "06:00"

    def test_month_bins_by_calendar_month(self):
        stamps = [dt.datetime(2015, 1, 5), dt.datetime(2015, 1, 25), dt.datetime(2015, 2, 1)]
        result = bin_temporal(_temporal(stamps), BinGranularity.MONTH)
        assert result.assignment[0] == result.assignment[1] != result.assignment[2]
        assert result.labels[result.assignment[0]] == "2015-01"

    def test_quarter_labels(self):
        result = bin_temporal(
            _temporal([dt.datetime(2015, 4, 1)]), BinGranularity.QUARTER
        )
        assert result.labels == ("2015-Q2",)

    def test_year_and_week(self):
        stamps = [dt.datetime(2015, 6, 1)]
        assert bin_temporal(_temporal(stamps), BinGranularity.YEAR).labels == ("2015",)
        assert "W" in bin_temporal(_temporal(stamps), BinGranularity.WEEK).labels[0]

    def test_buckets_sorted_by_key(self):
        stamps = [dt.datetime(2016, 3, 1), dt.datetime(2014, 7, 1), dt.datetime(2015, 1, 1)]
        result = bin_temporal(_temporal(stamps), BinGranularity.YEAR)
        assert result.labels == ("2014", "2015", "2016")
        assert list(result.assignment) == [2, 0, 1]

    def test_requires_temporal_column(self):
        col = Column("v", ColumnType.NUMERICAL, [1.0])
        with pytest.raises(ValidationError):
            bin_temporal(col, BinGranularity.DAY)

    def test_rejects_nan_rows(self):
        col = Column("t", ColumnType.TEMPORAL, np.array([0.0, np.nan]))
        with pytest.raises(ValidationError):
            bin_temporal(col, BinGranularity.DAY)


class TestNumericBinning:
    def test_equal_width_intervals(self):
        col = Column("v", ColumnType.NUMERICAL, [0, 5, 10, 15, 19.9])
        result = bin_numeric(col, 2)
        assert result.num_buckets == 2
        # Values below the midpoint share a bucket.
        assert result.assignment[0] == result.assignment[1]

    def test_max_value_lands_in_last_bucket(self):
        col = Column("v", ColumnType.NUMERICAL, [0, 10])
        result = bin_numeric(col, 10)
        assert result.sort_keys[result.assignment[1]] == 9.0

    def test_labels_share_exact_edges(self):
        # linspace-derived edges: the right edge of one interval is the
        # *same* float as the next interval's left edge, so no
        # "[0.30000000000000004, 0.4)" style labels.
        col = Column("v", ColumnType.NUMERICAL, np.linspace(0.0, 1.0, 11))
        result = bin_numeric(col, 10)
        for left_label, right_label in zip(result.labels, result.labels[1:]):
            assert left_label.split(", ")[1].rstrip(")") == \
                right_label.split(", ")[0].lstrip("[")

    def test_constant_column_single_bucket(self):
        col = Column("v", ColumnType.NUMERICAL, [7, 7, 7])
        result = bin_numeric(col, 5)
        assert result.labels == ("[7, 7]",)
        assert list(result.assignment) == [0, 0, 0]

    def test_invalid_n(self):
        col = Column("v", ColumnType.NUMERICAL, [1.0])
        with pytest.raises(ValidationError):
            bin_numeric(col, 0)

    def test_requires_numeric_column(self):
        col = Column("c", ColumnType.CATEGORICAL, ["a"])
        with pytest.raises(ValidationError):
            bin_numeric(col, 3)

    def test_rejects_nan_rows(self):
        col = Column("v", ColumnType.NUMERICAL, np.array([1.0, np.nan]))
        with pytest.raises(ValidationError):
            bin_numeric(col, 3)


class TestUDFAndGrouping:
    def test_udf_buckets_by_sign(self):
        col = Column("v", ColumnType.NUMERICAL, [-5, 3, -1, 8])
        result = bin_udf(col, lambda v: "neg" if v < 0 else "pos")
        assert result.labels == ("neg", "pos")
        assert result.assignment[0] == result.assignment[2]

    def test_group_preserves_first_appearance_order(self):
        col = Column("c", ColumnType.CATEGORICAL, ["b", "a", "b"])
        result = group_categorical(col)
        assert result.labels == ("b", "a")
        assert list(result.assignment) == [0, 1, 0]

    def test_group_rejects_numeric(self):
        col = Column("v", ColumnType.NUMERICAL, [1.0])
        with pytest.raises(ValidationError):
            group_categorical(col)

    def test_assign_buckets_sorted_and_dense(self):
        per_row = [
            Bucket(2.0, "c", 2.0),
            Bucket(0.0, "a", 0.0),
            Bucket(1.0, "b", 1.0),
            Bucket(0.0, "a", 0.0),
        ]
        result = assign_buckets(per_row)
        assert list(result.sort_keys) == sorted(result.sort_keys)
        assert result.assignment.max() == result.num_buckets - 1
        assert result.assignment[1] == result.assignment[3]


class TestTransformResult:
    def test_unpacks_to_buckets_and_assignment(self):
        col = Column("v", ColumnType.NUMERICAL, [30, 10, 20, 10])
        buckets, assignment = bin_numeric(col, 3)
        assert all(isinstance(b, Bucket) for b in buckets)
        assert assignment[1] == assignment[3]
        assert [b.label for b in buckets] == list(bin_numeric(col, 3).labels)

    def test_empty(self):
        result = TransformResult.empty()
        assert result.num_buckets == 0 and result.num_rows == 0
        assert result.buckets == () and result.values_tuple == ()

    def test_pickle_drops_lazy_views_and_round_trips(self):
        col = Column("v", ColumnType.NUMERICAL, np.arange(20.0))
        result = bin_numeric(col, 4)
        _ = result.buckets, result.values_tuple  # populate the caches
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert clone._buckets is None and clone._values_tuple is None
        assert clone.buckets == result.buckets


class TestAggregation:
    def test_count(self):
        values = aggregate(AggregateOp.CNT, np.asarray([0, 0, 1]), 2)
        assert list(values) == [2.0, 1.0]

    def test_sum_and_avg(self):
        y = Column("y", ColumnType.NUMERICAL, [1, 2, 3])
        assignment = np.asarray([0, 0, 1])
        assert list(aggregate(AggregateOp.SUM, assignment, 2, y)) == [3.0, 3.0]
        assert list(aggregate(AggregateOp.AVG, assignment, 2, y)) == [1.5, 3.0]

    def test_empty_bucket_aggregates_to_zero(self):
        y = Column("y", ColumnType.NUMERICAL, [5.0])
        values = aggregate(AggregateOp.AVG, np.asarray([1]), 2, y)
        assert values[0] == 0.0

    def test_sum_requires_numeric_y(self):
        y = Column("y", ColumnType.CATEGORICAL, ["a"])
        with pytest.raises(ValidationError):
            aggregate(AggregateOp.SUM, np.asarray([0]), 1, y)

    def test_sum_requires_y(self):
        with pytest.raises(ValidationError):
            aggregate(AggregateOp.SUM, np.asarray([0]), 1, None)

    def test_misaligned_assignment(self):
        y = Column("y", ColumnType.NUMERICAL, [1, 2])
        with pytest.raises(ValidationError):
            aggregate(AggregateOp.SUM, np.asarray([0]), 1, y)
