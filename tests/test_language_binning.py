"""Unit tests for binning, grouping, and aggregation."""

import datetime as dt

import numpy as np
import pytest

from repro.dataset import Column, ColumnType
from repro.errors import ValidationError
from repro.language import (
    AggregateOp,
    BinGranularity,
    aggregate,
    assign_buckets,
    bin_numeric,
    bin_temporal,
    bin_udf,
    group_categorical,
)


def _temporal(stamps):
    return Column("t", ColumnType.TEMPORAL, stamps)


class TestTemporalBinning:
    def test_hour_bins_by_hour_of_day(self):
        # The paper: "the rows with the same hour are in the same bucket".
        stamps = [
            dt.datetime(2015, 1, 1, 6, 0),
            dt.datetime(2015, 5, 9, 6, 45),
            dt.datetime(2015, 2, 2, 7, 0),
        ]
        buckets = bin_temporal(_temporal(stamps), BinGranularity.HOUR)
        assert buckets[0] == buckets[1]
        assert buckets[0] != buckets[2]
        assert buckets[0].label == "06:00"

    def test_month_bins_by_calendar_month(self):
        stamps = [dt.datetime(2015, 1, 5), dt.datetime(2015, 1, 25), dt.datetime(2015, 2, 1)]
        buckets = bin_temporal(_temporal(stamps), BinGranularity.MONTH)
        assert buckets[0] == buckets[1] != buckets[2]
        assert buckets[0].label == "2015-01"

    def test_quarter_labels(self):
        buckets = bin_temporal(
            _temporal([dt.datetime(2015, 4, 1)]), BinGranularity.QUARTER
        )
        assert buckets[0].label == "2015-Q2"

    def test_year_and_week(self):
        stamps = [dt.datetime(2015, 6, 1)]
        assert bin_temporal(_temporal(stamps), BinGranularity.YEAR)[0].label == "2015"
        assert "W" in bin_temporal(_temporal(stamps), BinGranularity.WEEK)[0].label

    def test_requires_temporal_column(self):
        col = Column("v", ColumnType.NUMERICAL, [1.0])
        with pytest.raises(ValidationError):
            bin_temporal(col, BinGranularity.DAY)


class TestNumericBinning:
    def test_equal_width_intervals(self):
        col = Column("v", ColumnType.NUMERICAL, [0, 5, 10, 15, 19.9])
        buckets = bin_numeric(col, 2)
        labels = {b.label for b in buckets}
        assert len(labels) == 2
        # Values below the midpoint share a bucket.
        assert buckets[0] == buckets[1]

    def test_max_value_lands_in_last_bucket(self):
        col = Column("v", ColumnType.NUMERICAL, [0, 10])
        buckets = bin_numeric(col, 10)
        assert buckets[1].sort_key == 9.0

    def test_constant_column_single_bucket(self):
        col = Column("v", ColumnType.NUMERICAL, [7, 7, 7])
        buckets = bin_numeric(col, 5)
        assert len({b.label for b in buckets}) == 1

    def test_invalid_n(self):
        col = Column("v", ColumnType.NUMERICAL, [1.0])
        with pytest.raises(ValidationError):
            bin_numeric(col, 0)

    def test_requires_numeric_column(self):
        col = Column("c", ColumnType.CATEGORICAL, ["a"])
        with pytest.raises(ValidationError):
            bin_numeric(col, 3)


class TestUDFAndGrouping:
    def test_udf_buckets_by_sign(self):
        col = Column("v", ColumnType.NUMERICAL, [-5, 3, -1, 8])
        buckets = bin_udf(col, lambda v: "neg" if v < 0 else "pos")
        assert buckets[0].label == "neg"
        assert buckets[1].label == "pos"
        assert buckets[0] == buckets[2]

    def test_group_preserves_first_appearance_order(self):
        col = Column("c", ColumnType.CATEGORICAL, ["b", "a", "b"])
        buckets = group_categorical(col)
        assert buckets[0].sort_key < buckets[1].sort_key

    def test_group_rejects_numeric(self):
        col = Column("v", ColumnType.NUMERICAL, [1.0])
        with pytest.raises(ValidationError):
            group_categorical(col)

    def test_assign_buckets_sorted_and_dense(self):
        col = Column("v", ColumnType.NUMERICAL, [30, 10, 20, 10])
        distinct, assignment = assign_buckets(bin_numeric(col, 3))
        assert [b.sort_key for b in distinct] == sorted(b.sort_key for b in distinct)
        assert assignment.max() == len(distinct) - 1
        assert assignment[1] == assignment[3]  # both 10s share a bucket


class TestAggregation:
    def test_count(self):
        values = aggregate(AggregateOp.CNT, np.asarray([0, 0, 1]), 2)
        assert list(values) == [2.0, 1.0]

    def test_sum_and_avg(self):
        y = Column("y", ColumnType.NUMERICAL, [1, 2, 3])
        assignment = np.asarray([0, 0, 1])
        assert list(aggregate(AggregateOp.SUM, assignment, 2, y)) == [3.0, 3.0]
        assert list(aggregate(AggregateOp.AVG, assignment, 2, y)) == [1.5, 3.0]

    def test_empty_bucket_aggregates_to_zero(self):
        y = Column("y", ColumnType.NUMERICAL, [5.0])
        values = aggregate(AggregateOp.AVG, np.asarray([1]), 2, y)
        assert values[0] == 0.0

    def test_sum_requires_numeric_y(self):
        y = Column("y", ColumnType.CATEGORICAL, ["a"])
        with pytest.raises(ValidationError):
            aggregate(AggregateOp.SUM, np.asarray([0]), 1, y)

    def test_sum_requires_y(self):
        with pytest.raises(ValidationError):
            aggregate(AggregateOp.SUM, np.asarray([0]), 1, None)

    def test_misaligned_assignment(self):
        y = Column("y", ColumnType.NUMERICAL, [1, 2])
        with pytest.raises(ValidationError):
            aggregate(AggregateOp.SUM, np.asarray([0]), 1, y)
