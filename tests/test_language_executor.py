"""Unit tests for query execution (Q(D) -> ChartData)."""

import datetime as dt

import pytest

from repro.dataset import Table
from repro.errors import ExecutionError, ValidationError
from repro.language import (
    AggregateOp,
    BinByGranularity,
    BinGranularity,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    OrderBy,
    OrderTarget,
    VisQuery,
    execute,
)


@pytest.fixture
def table():
    return Table.from_dict(
        "t",
        {
            "when": [dt.datetime(2015, 1, 1, h) for h in (6, 6, 7, 8, 8, 8)],
            "carrier": ["UA", "AA", "UA", "OO", "AA", "UA"],
            "delay": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        },
    )


class TestTransformedExecution:
    def test_bin_by_hour_with_avg(self, table):
        q = VisQuery(
            chart=ChartType.LINE, x="when", y="delay",
            transform=BinByGranularity("when", BinGranularity.HOUR),
            aggregate=AggregateOp.AVG,
        )
        data = execute(q, table)
        assert data.x_labels == ("06:00", "07:00", "08:00")
        assert data.y_values == (15.0, 30.0, 50.0)
        assert data.transformed_rows == 3
        assert data.source_rows == 6

    def test_group_by_with_count(self, table):
        q = VisQuery(
            chart=ChartType.BAR, x="carrier", y="carrier",
            transform=GroupBy("carrier"), aggregate=AggregateOp.CNT,
        )
        data = execute(q, table)
        assert dict(zip(data.x_labels, data.y_values)) == {
            "UA": 3.0, "AA": 2.0, "OO": 1.0,
        }
        assert data.x_is_discrete

    def test_group_by_with_sum(self, table):
        q = VisQuery(
            chart=ChartType.PIE, x="carrier", y="delay",
            transform=GroupBy("carrier"), aggregate=AggregateOp.SUM,
        )
        data = execute(q, table)
        assert dict(zip(data.x_labels, data.y_values))["UA"] == 100.0

    def test_transform_must_target_x(self, table):
        q = VisQuery(
            chart=ChartType.BAR, x="carrier", y="delay",
            transform=GroupBy("delay"), aggregate=AggregateOp.SUM,
        )
        with pytest.raises(ValidationError):
            execute(q, table)

    def test_avg_of_categorical_y_rejected(self, table):
        q = VisQuery(
            chart=ChartType.BAR, x="when", y="carrier",
            transform=BinByGranularity("when", BinGranularity.HOUR),
            aggregate=AggregateOp.AVG,
        )
        with pytest.raises(ValidationError):
            execute(q, table)


class TestRawExecution:
    def test_raw_numeric_pair(self, table):
        q = VisQuery(chart=ChartType.SCATTER, x="delay", y="delay")
        data = execute(q, table)
        assert data.transformed_rows == 6
        assert not data.x_is_discrete

    def test_raw_categorical_x_is_discrete(self, table):
        q = VisQuery(chart=ChartType.BAR, x="carrier", y="delay")
        data = execute(q, table)
        assert data.x_is_discrete
        assert data.x_labels[0] == "UA"

    def test_raw_requires_numeric_y(self, table):
        q = VisQuery(chart=ChartType.BAR, x="delay", y="carrier")
        with pytest.raises(ValidationError):
            execute(q, table)


class TestOrdering:
    def test_order_by_x(self, table):
        q = VisQuery(
            chart=ChartType.BAR, x="carrier", y="delay",
            transform=GroupBy("carrier"), aggregate=AggregateOp.SUM,
            order=OrderBy(OrderTarget.X),
        )
        data = execute(q, table)
        assert list(data.x_values) == sorted(data.x_values)

    def test_order_by_y_desc(self, table):
        q = VisQuery(
            chart=ChartType.BAR, x="carrier", y="delay",
            transform=GroupBy("carrier"), aggregate=AggregateOp.SUM,
            order=OrderBy(OrderTarget.Y, descending=True),
        )
        data = execute(q, table)
        assert list(data.y_values) == sorted(data.y_values, reverse=True)

    def test_ordering_keeps_pairs_aligned(self, table):
        base = VisQuery(
            chart=ChartType.BAR, x="carrier", y="delay",
            transform=GroupBy("carrier"), aggregate=AggregateOp.SUM,
        )
        unordered = execute(base, table)
        ordered = execute(
            VisQuery(**{**base.__dict__, "order": OrderBy(OrderTarget.Y)}), table
        )
        assert dict(zip(unordered.x_labels, unordered.y_values)) == dict(
            zip(ordered.x_labels, ordered.y_values)
        )


class TestChartDataStats:
    def test_distinct_counts(self, table):
        q = VisQuery(
            chart=ChartType.LINE, x="when", y="delay",
            transform=BinByGranularity("when", BinGranularity.HOUR),
            aggregate=AggregateOp.AVG,
        )
        data = execute(q, table)
        assert data.distinct_x == 3
        assert data.distinct_y == 3
        assert data.y_min == 15.0
        assert data.y_max == 50.0

    def test_errors(self, table):
        empty = Table.from_dict("e", {"a": [], "b": []})
        q = VisQuery(chart=ChartType.BAR, x="a", y="b")
        with pytest.raises(ExecutionError):
            execute(q, empty)
        with pytest.raises(ValidationError):
            execute(VisQuery(chart=ChartType.BAR, x="zz", y="delay"), table)
