"""Property test: the query printer and parser are inverses.

For any well-formed VisQuery, ``parse_query(q.to_text())`` must return
an equal query — the language's core round-trip invariant.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.language import (
    AggregateOp,
    BinByGranularity,
    BinGranularity,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    OrderBy,
    OrderTarget,
    VisQuery,
    parse_query,
)

# Column names restricted to the parser's unambiguous space: no commas,
# no leading/trailing spaces, no clause keywords, distinct from each
# other.  Interior spaces are allowed (the paper's "departure delay").
_name_chars = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_",
    min_size=1,
    max_size=8,
)
#: Words the grammar itself uses; a column named "by" inside a BIN
#: clause is genuinely ambiguous ("BIN a by BY HOUR"), so the language
#: reserves them — mirrored here.
_RESERVED = {"by", "into", "x", "y", "bin", "group", "order"}

column_names = st.builds(
    lambda a, b: f"{a} {b}" if b else a,
    _name_chars,
    st.one_of(st.just(""), _name_chars),
).filter(lambda name: not set(name.split()) & _RESERVED)


def _transforms(x_name: str):
    return st.one_of(
        st.none(),
        st.just(GroupBy(x_name)),
        st.builds(
            BinByGranularity, st.just(x_name), st.sampled_from(list(BinGranularity))
        ),
        st.builds(
            BinIntoBuckets, st.just(x_name), st.integers(min_value=1, max_value=99)
        ),
    )


@st.composite
def queries(draw):
    x = draw(column_names)
    y = draw(column_names.filter(lambda n: n != x))
    transform = draw(_transforms(x))
    if transform is None:
        aggregate = None
    else:
        aggregate = draw(st.sampled_from(list(AggregateOp)))
    order = draw(
        st.one_of(
            st.none(),
            st.builds(
                OrderBy,
                st.sampled_from(list(OrderTarget)),
                st.booleans(),
            ),
        )
    )
    chart = draw(st.sampled_from(list(ChartType)))
    return VisQuery(
        chart=chart, x=x, y=y, transform=transform, aggregate=aggregate, order=order
    )


class TestRoundTrip:
    @given(queries())
    @settings(max_examples=300, deadline=None)
    def test_parse_inverts_to_text(self, query):
        parsed = parse_query(query.to_text("t"))
        # ORDER BY prints as X/Y which parses back to the same target;
        # ascending is the default so the flag round-trips too.
        assert parsed.query == query
        assert parsed.table_name == "t"

    @given(queries())
    @settings(max_examples=100, deadline=None)
    def test_to_text_is_deterministic(self, query):
        assert query.to_text("t") == query.to_text("t")
