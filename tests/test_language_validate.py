"""Tests for pre-execution query validation."""

import pytest

from repro.dataset import Table
from repro.errors import ValidationError
from repro.language import (
    AggregateOp,
    BinByGranularity,
    BinByUDF,
    BinGranularity,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    VisQuery,
    execute,
    validate_query,
)


@pytest.fixture
def table(tiny_table):
    return tiny_table  # city (Cat), value (Num), when (Tem)


def _q(**kwargs):
    defaults = dict(chart=ChartType.BAR, x="city", y="value")
    defaults.update(kwargs)
    return VisQuery(**defaults)


class TestValidQueries:
    def test_valid_grouped_query(self, table):
        q = _q(transform=GroupBy("city"), aggregate=AggregateOp.SUM)
        assert validate_query(q, table) == []

    def test_valid_raw_query(self, table):
        assert validate_query(_q(), table) == []

    def test_valid_temporal_bin(self, table):
        q = _q(
            x="when",
            transform=BinByGranularity("when", BinGranularity.DAY),
            aggregate=AggregateOp.AVG,
        )
        assert validate_query(q, table) == []


class TestProblemDetection:
    def test_missing_column_lists_available(self, table):
        problems = validate_query(_q(x="nope"), table)
        assert len(problems) == 1
        assert "nope" in problems[0] and "city" in problems[0]

    def test_group_by_numeric(self, table):
        q = _q(x="value", transform=GroupBy("value"), aggregate=AggregateOp.CNT)
        problems = validate_query(q, table)
        assert any("GROUP BY" in p for p in problems)

    def test_bin_granularity_on_non_temporal(self, table):
        q = _q(
            x="value",
            transform=BinByGranularity("value", BinGranularity.HOUR),
            aggregate=AggregateOp.AVG,
        )
        assert any("temporal" in p for p in validate_query(q, table))

    def test_bin_into_on_categorical(self, table):
        q = _q(transform=BinIntoBuckets("city", 5), aggregate=AggregateOp.CNT)
        assert any("numerical" in p for p in validate_query(q, table))

    def test_avg_of_categorical(self, table):
        q = _q(
            x="when", y="city",
            transform=BinByGranularity("when", BinGranularity.DAY),
            aggregate=AggregateOp.AVG,
        )
        assert any("AVG" in p for p in validate_query(q, table))

    def test_transform_target_mismatch(self, table):
        q = _q(transform=GroupBy("value"), aggregate=AggregateOp.SUM)
        assert any("TRANSFORM targets" in p for p in validate_query(q, table))

    def test_raw_non_numeric_y(self, table):
        q = _q(x="value", y="city")
        assert any("numerical y" in p for p in validate_query(q, table))

    def test_avg_pie_warned(self, table):
        q = _q(
            chart=ChartType.PIE, transform=GroupBy("city"),
            aggregate=AggregateOp.AVG,
        )
        assert any("pie" in p for p in validate_query(q, table))

    def test_udf_on_categorical(self, table):
        q = _q(
            transform=BinByUDF("city", "f", lambda v: v),
            aggregate=AggregateOp.CNT,
        )
        assert any("UDF" in p for p in validate_query(q, table))

    def test_empty_table(self):
        empty = Table.from_dict("e", {"a": [], "b": []})
        q = VisQuery(chart=ChartType.SCATTER, x="a", y="b")
        assert any("no rows" in p for p in validate_query(q, empty))


class TestConsistencyWithExecutor:
    def test_clean_validation_implies_executable(self, table):
        """Any query validate_query clears must execute (on this table)."""
        candidates = [
            _q(),
            _q(transform=GroupBy("city"), aggregate=AggregateOp.AVG),
            _q(x="when", transform=BinByGranularity("when", BinGranularity.DAY),
               aggregate=AggregateOp.CNT),
            _q(x="value", transform=BinIntoBuckets("value", 3),
               aggregate=AggregateOp.SUM),
        ]
        for query in candidates:
            if validate_query(query, table) == []:
                execute(query, table)  # must not raise

    def test_problem_implies_executor_rejects_or_flags(self, table):
        q = _q(transform=BinIntoBuckets("city", 5), aggregate=AggregateOp.CNT)
        assert validate_query(q, table)
        with pytest.raises(ValidationError):
            execute(q, table)
