"""Unit tests for LambdaMART learning-to-rank."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml import LambdaMART, RankingDataset, ndcg_at_k


def _synthetic_ranking(seed=0, queries=15, docs=12):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(queries * docs, 4))
    relevance = np.clip(np.round(2.0 + 1.5 * X[:, 0] - X[:, 1]), 0, 4)
    qids = np.repeat(np.arange(queries), docs)
    return RankingDataset(X, relevance, qids)


class TestRankingDataset:
    def test_groups_partition_documents(self):
        data = _synthetic_ranking(queries=3, docs=5)
        groups = data.groups()
        assert len(groups) == 3
        assert sorted(i for g in groups for i in g) == list(range(15))

    def test_alignment_checked(self):
        with pytest.raises(ModelError):
            RankingDataset(np.zeros((3, 2)), [1, 0], [0, 0, 0])


class TestLambdaMART:
    def test_learns_synthetic_preference(self):
        data = _synthetic_ranking()
        model = LambdaMART(n_estimators=30, max_depth=3).fit(data)
        ndcgs = []
        for idx in data.groups():
            order = np.argsort(-model.predict(data.X[idx]))
            ndcgs.append(ndcg_at_k(data.relevance[idx][order]))
        assert float(np.mean(ndcgs)) > 0.95

    def test_generalises_to_unseen_query(self):
        train = _synthetic_ranking(seed=0)
        test = _synthetic_ranking(seed=99, queries=5)
        model = LambdaMART(n_estimators=30).fit(train)
        ndcgs = []
        for idx in test.groups():
            order = np.argsort(-model.predict(test.X[idx]))
            ndcgs.append(ndcg_at_k(test.relevance[idx][order]))
        assert float(np.mean(ndcgs)) > 0.85

    def test_rank_returns_permutation(self):
        data = _synthetic_ranking(queries=2, docs=6)
        model = LambdaMART(n_estimators=5).fit(data)
        order = model.rank(data.X[:6])
        assert sorted(order) == list(range(6))

    def test_ndcg_helper_matches_manual(self):
        data = _synthetic_ranking(queries=1, docs=8)
        model = LambdaMART(n_estimators=10).fit(data)
        manual_order = model.rank(data.X)
        manual = ndcg_at_k(data.relevance[manual_order])
        assert model.ndcg(data.X, data.relevance) == pytest.approx(manual)

    def test_uniform_relevance_yields_zero_scores(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        data = RankingDataset(X, np.ones(10), np.zeros(10))
        model = LambdaMART(n_estimators=3).fit(data)
        # With no preference pairs there is no gradient: scores are flat.
        assert np.allclose(model.predict(X), model.predict(X)[0])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LambdaMART().predict(np.zeros((1, 2)))

    def test_single_document_group_handled(self):
        X = np.zeros((1, 2))
        data = RankingDataset(X, [3.0], [0])
        model = LambdaMART(n_estimators=2).fit(data)
        assert len(model.predict(X)) == 1
