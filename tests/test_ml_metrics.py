"""Unit tests for classification and ranking metrics."""

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import (
    accuracy,
    confusion_matrix,
    dcg_at_k,
    kendall_tau,
    ndcg_at_k,
    ndcg_of_ranking,
    precision_recall_f1,
)


class TestClassificationMetrics:
    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_confusion_matrix(self):
        counts = confusion_matrix(
            [True, True, False, False], [True, False, True, False]
        )
        assert counts == {"tp": 1, "fp": 1, "tn": 1, "fn": 1}

    def test_precision_recall_f1(self):
        metrics = precision_recall_f1(
            [True, True, True, False], [True, True, False, True]
        )
        assert metrics["precision"] == pytest.approx(2 / 3)
        assert metrics["recall"] == pytest.approx(2 / 3)
        assert metrics["f1"] == pytest.approx(2 / 3)

    def test_degenerate_cases_score_zero(self):
        metrics = precision_recall_f1([False, False], [False, False])
        assert metrics == {"precision": 0.0, "recall": 0.0, "f1": 0.0}

    def test_misaligned_raises(self):
        with pytest.raises(ModelError):
            accuracy([1], [1, 2])
        with pytest.raises(ModelError):
            accuracy([], [])


class TestDCG:
    def test_dcg_formula(self):
        # DCG of [3, 2] = 3/log2(2) + 2/log2(3).
        expected = 3.0 + 2.0 / math.log2(3)
        assert dcg_at_k([3, 2]) == pytest.approx(expected)

    def test_k_truncates(self):
        assert dcg_at_k([3, 2, 1], k=1) == pytest.approx(3.0)

    def test_empty(self):
        assert dcg_at_k([]) == 0.0


class TestNDCG:
    def test_perfect_ranking_scores_one(self):
        assert ndcg_at_k([3, 2, 1, 0]) == pytest.approx(1.0)

    def test_reversed_ranking_below_one(self):
        assert ndcg_at_k([0, 1, 2, 3]) < 1.0

    def test_all_zero_gains_convention(self):
        assert ndcg_at_k([0, 0, 0]) == 1.0

    def test_swap_adjacent_reduces(self):
        assert ndcg_at_k([3, 1, 2]) < ndcg_at_k([3, 2, 1])

    def test_ndcg_of_ranking_with_dropped_items(self):
        # Ranker only returned items 0 and 1 of three; item 2 has the
        # top gain, so NDCG must be penalised.
        value = ndcg_of_ranking([0, 1], relevance=[1.0, 2.0, 3.0])
        assert value < 1.0

    def test_ndcg_of_ranking_perfect(self):
        assert ndcg_of_ranking([2, 1, 0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)


class TestKendallTau:
    def test_identical_orders(self):
        assert kendall_tau([1, 2, 3], [1, 2, 3]) == 1.0

    def test_reversed_orders(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == -1.0

    def test_partial_agreement(self):
        assert -1.0 < kendall_tau([1, 2, 3], [1, 3, 2]) < 1.0

    def test_not_permutations(self):
        with pytest.raises(ModelError):
            kendall_tau([1, 2], [1, 3])

    def test_single_item(self):
        assert kendall_tau([5], [5]) == 1.0
