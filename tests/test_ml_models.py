"""Unit tests for naive Bayes, linear SVM, and gradient boosting."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml import (
    GaussianNaiveBayes,
    GradientBoostedRegressor,
    LinearSVM,
    StandardScaler,
)


def _gaussian_blobs(seed=0, n=200, gap=4.0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, size=(n, 2))
    X1 = rng.normal(gap, 1.0, size=(n, 2))
    X = np.vstack([X0, X1])
    y = np.asarray([0] * n + [1] * n)
    return X, y


class TestGaussianNaiveBayes:
    def test_separates_gaussian_blobs(self):
        X, y = _gaussian_blobs()
        model = GaussianNaiveBayes().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.98

    def test_predict_proba_normalised(self):
        X, y = _gaussian_blobs(n=50)
        model = GaussianNaiveBayes().fit(X, y)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_priors_respected(self):
        # 90/10 prior with identical likelihoods: majority class wins.
        X = np.zeros((100, 1))
        y = np.asarray([0] * 90 + [1] * 10)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.predict([[0.0]])[0] == 0

    def test_constant_feature_does_not_crash(self):
        X = np.asarray([[1.0, 5.0], [1.0, 6.0], [1.0, 1.0], [1.0, 2.0]])
        y = np.asarray([1, 1, 0, 0])
        model = GaussianNaiveBayes().fit(X, y)
        assert set(model.predict(X)) <= {0, 1}

    def test_sample_weight_changes_prior(self):
        X = np.asarray([[0.0], [0.0]])
        y = np.asarray([0, 1])
        model = GaussianNaiveBayes().fit(X, y, sample_weight=[1.0, 10.0])
        assert model.predict([[0.0]])[0] == 1

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GaussianNaiveBayes().predict([[0.0]])


class TestLinearSVM:
    def test_separates_scaled_blobs(self):
        X, y = _gaussian_blobs(gap=5.0)
        X = StandardScaler().fit_transform(X)
        model = LinearSVM(epochs=20).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.97

    def test_decision_function_sign_matches_prediction(self):
        X, y = _gaussian_blobs(n=80)
        model = LinearSVM(epochs=10).fit(X, y)
        scores = model.decision_function(X)
        predictions = model.predict(X)
        assert ((scores > 0) == (predictions == model.classes_[1])).all()

    def test_binary_only(self):
        X = np.zeros((3, 1))
        with pytest.raises(ModelError):
            LinearSVM().fit(X, [0, 1, 2])

    def test_string_labels(self):
        X, y = _gaussian_blobs(n=50)
        labels = np.where(y == 1, "good", "bad")
        model = LinearSVM(epochs=10).fit(X, labels)
        assert set(model.predict(X)) <= {"good", "bad"}

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            LinearSVM(lam=0)
        with pytest.raises(ModelError):
            LinearSVM(epochs=0)

    def test_weight_norm_bounded_by_projection(self):
        X, y = _gaussian_blobs(n=60)
        model = LinearSVM(lam=1e-2, epochs=5).fit(X, y)
        assert np.linalg.norm(model.w_) <= 1.0 / np.sqrt(1e-2) + 1e-6


class TestGradientBoosting:
    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-2, 2, size=(300, 1))
        y = np.sin(X[:, 0] * 2) + rng.normal(0, 0.05, 300)
        model = GradientBoostedRegressor(n_estimators=80, max_depth=3).fit(X, y)
        rmse = float(np.sqrt(np.mean((model.predict(X) - y) ** 2)))
        assert rmse < 0.15

    def test_staged_training_error_decreases(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(150, 2))
        y = X[:, 0] * 2 - X[:, 1]
        model = GradientBoostedRegressor(n_estimators=30).fit(X, y)
        errors = [
            float(np.mean((stage - y) ** 2)) for stage in model.staged_predict(X)
        ]
        assert errors[-1] < errors[0]
        # Squared-error boosting decreases training loss monotonically.
        assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))

    def test_subsample(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        model = GradientBoostedRegressor(
            n_estimators=20, subsample=0.5, random_state=1
        ).fit(X, y)
        assert float(np.mean((model.predict(X) - y) ** 2)) < np.var(y)

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            GradientBoostedRegressor(n_estimators=0)
        with pytest.raises(ModelError):
            GradientBoostedRegressor(learning_rate=0)
        with pytest.raises(ModelError):
            GradientBoostedRegressor(subsample=1.5)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GradientBoostedRegressor().predict([[0.0]])
