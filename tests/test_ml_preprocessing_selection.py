"""Unit tests for preprocessing and model-selection utilities."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml import KFold, OneHotEncoder, StandardScaler, cross_val_score, train_test_split
from repro.ml.preprocessing import polynomial_features


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_left_at_zero(self):
        X = np.asarray([[1.0, 2.0], [1.0, 4.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        X = np.asarray([[1.0, 2.0], [3.0, 4.0]])
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])


class TestOneHotEncoder:
    def test_encodes_known_categories(self):
        enc = OneHotEncoder().fit([["a", "b", "a"]])
        out = enc.transform([["b", "a"]])
        assert out.tolist() == [[0.0, 1.0], [1.0, 0.0]]

    def test_unknown_category_is_all_zero(self):
        enc = OneHotEncoder().fit([["a", "b"]])
        out = enc.transform([["z"]])
        assert out.tolist() == [[0.0, 0.0]]

    def test_multiple_columns_stack(self):
        enc = OneHotEncoder().fit([["a", "b"], ["x", "y", "z"]])
        out = enc.transform([["a"], ["z"]])
        assert out.shape == (1, 5)

    def test_column_count_checked(self):
        enc = OneHotEncoder().fit([["a"]])
        with pytest.raises(ModelError):
            enc.transform([["a"], ["b"]])


class TestPolynomialFeatures:
    def test_degree_two_width(self):
        X = np.ones((3, 4))
        out = polynomial_features(X)
        assert out.shape == (3, 4 + 4 + 3 + 2 + 1)

    def test_contains_squares_and_products(self):
        X = np.asarray([[2.0, 3.0]])
        out = polynomial_features(X)[0]
        assert set(out) >= {2.0, 3.0, 4.0, 6.0, 9.0}

    def test_only_degree_two(self):
        with pytest.raises(ModelError):
            polynomial_features(np.ones((1, 2)), degree=3)


class TestSplits:
    def test_train_test_split_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.arange(100)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_fraction=0.2)
        assert len(X_te) == 20
        assert len(X_tr) == 80
        assert set(y_tr) | set(y_te) == set(range(100))

    def test_stratified_preserves_minority(self):
        X = np.zeros((100, 1))
        y = np.asarray([1] * 10 + [0] * 90)
        __, __, y_tr, y_te = train_test_split(X, y, 0.3, stratify=True)
        assert 0 < (y_te == 1).sum() < 10

    def test_invalid_fraction(self):
        with pytest.raises(ModelError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.5)

    def test_kfold_covers_all_indices_once(self):
        folds = list(KFold(4).split(20))
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test) == list(range(20))
        for train, test in folds:
            assert set(train) & set(test) == set()

    def test_kfold_too_few_samples(self):
        with pytest.raises(ModelError):
            list(KFold(5).split(3))

    def test_cross_val_score_runs_model(self):
        from repro.ml import DecisionTreeClassifier, accuracy

        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 2))
        y = X[:, 0] > 0
        scores = cross_val_score(
            lambda: DecisionTreeClassifier(max_depth=3), X, y, accuracy, n_splits=3
        )
        assert len(scores) == 3
        assert all(s > 0.7 for s in scores)
