"""Unit tests for the RankNet pairwise neural ranker."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml import RankNet, RankingDataset, ndcg_at_k


def _synthetic(seed=0, queries=12, docs=12, nonlinear=False):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(queries * docs, 4))
    if nonlinear:
        target = X[:, 0] ** 2 - X[:, 1]
    else:
        target = 1.5 * X[:, 0] - X[:, 1]
    relevance = np.clip(np.round(2 + target), 0, 4)
    qids = np.repeat(np.arange(queries), docs)
    return RankingDataset(X, relevance, qids)


def _mean_ndcg(model, data):
    values = []
    for idx in data.groups():
        order = np.argsort(-model.predict(data.X[idx]))
        values.append(ndcg_at_k(data.relevance[idx][order]))
    return float(np.mean(values))


class TestRankNet:
    def test_learns_linear_preference(self):
        data = _synthetic()
        model = RankNet(epochs=30).fit(data)
        assert _mean_ndcg(model, data) > 0.95

    def test_learns_nonlinear_preference(self):
        data = _synthetic(nonlinear=True)
        model = RankNet(hidden_units=24, epochs=60).fit(data)
        assert _mean_ndcg(model, data) > 0.85

    def test_generalises(self):
        train = _synthetic(seed=0)
        test = _synthetic(seed=42, queries=4)
        model = RankNet(epochs=30).fit(train)
        assert _mean_ndcg(model, test) > 0.85

    def test_rank_is_permutation(self):
        data = _synthetic(queries=1, docs=8)
        model = RankNet(epochs=5).fit(data)
        assert sorted(model.rank(data.X)) == list(range(8))

    def test_uniform_relevance_no_pairs(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        data = RankingDataset(X, np.ones(10), np.zeros(10))
        model = RankNet(epochs=3).fit(data)
        assert len(model.predict(X)) == 10  # trains to a no-op, no crash

    def test_deterministic_given_seed(self):
        data = _synthetic()
        a = RankNet(epochs=5, random_state=3).fit(data).predict(data.X)
        b = RankNet(epochs=5, random_state=3).fit(data).predict(data.X)
        assert np.allclose(a, b)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            RankNet().predict(np.zeros((1, 2)))

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            RankNet(hidden_units=0)
        with pytest.raises(ModelError):
            RankNet(epochs=0)

    def test_scale_invariance_via_standardisation(self):
        data = _synthetic()
        scaled = RankingDataset(data.X * 1000.0, data.relevance, data.query_ids)
        model = RankNet(epochs=20).fit(scaled)
        assert _mean_ndcg(model, scaled) > 0.9
