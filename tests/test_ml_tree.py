"""Unit tests for the from-scratch CART trees."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor


class TestClassifier:
    def test_perfectly_separable(self):
        X = np.asarray([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.asarray([0, 0, 0, 1, 1, 1])
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert list(model.predict(X)) == list(y)
        assert model.depth_ == 1

    def test_xor_needs_depth_two(self):
        X = np.asarray([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.asarray([0, 1, 1, 0])
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert (shallow.predict(X) == y).mean() < 1.0
        assert (deep.predict(X) == y).mean() == 1.0

    def test_string_labels(self):
        X = np.asarray([[0.0], [10.0]])
        model = DecisionTreeClassifier().fit(X, ["bad", "good"])
        assert list(model.predict([[1.0], [9.0]])) == ["bad", "good"]

    def test_predict_proba_sums_to_one(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        y = X[:, 0] > 0
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (100, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_sample_weights_shift_decision(self):
        X = np.asarray([[0.0], [1.0], [2.0], [3.0]])
        y = np.asarray([0, 0, 1, 1])
        # Give overwhelming weight to the class-1 points so a depth-0
        # tie-ish case classifies everything as 1 at the root leaf.
        model = DecisionTreeClassifier(max_depth=1, min_samples_split=100).fit(
            X, y, sample_weight=[1, 1, 100, 100]
        )
        assert model.predict([[0.0]])[0] == 1

    def test_min_samples_leaf_respected(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = (X[:, 0] > 8).astype(int)  # only one positive
        model = DecisionTreeClassifier(min_samples_leaf=3).fit(X, y)
        # No split can isolate the single positive with 3-sample leaves.
        assert model.root_.is_leaf or all(
            leaf_n >= 3
            for leaf_n in _leaf_sizes(model.root_)
        )

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_validation_errors(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros((2, 2)), [0])
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), [])


def _leaf_sizes(node):
    if node.is_leaf:
        return [node.n_samples]
    return _leaf_sizes(node.left) + _leaf_sizes(node.right)


class TestRegressor:
    def test_piecewise_constant_fit(self):
        X = np.asarray([[0.0], [1.0], [10.0], [11.0]])
        y = np.asarray([2.0, 2.0, 8.0, 8.0])
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert model.predict([[0.5]])[0] == pytest.approx(2.0)
        assert model.predict([[10.5]])[0] == pytest.approx(8.0)

    def test_deeper_tree_reduces_training_error(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, size=(200, 2))
        y = np.sin(6 * X[:, 0]) + X[:, 1]
        errors = []
        for depth in (1, 3, 6):
            model = DecisionTreeRegressor(max_depth=depth).fit(X, y)
            errors.append(float(np.mean((model.predict(X) - y) ** 2)))
        assert errors[0] > errors[1] > errors[2]

    def test_apply_returns_leaves_with_values(self):
        X = np.asarray([[0.0], [10.0]])
        y = np.asarray([1.0, 5.0])
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        leaves = model.apply(X)
        assert leaves[0].is_leaf and leaves[1].is_leaf
        assert leaves[0].value[0] == pytest.approx(1.0)

    def test_constant_target_single_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        model = DecisionTreeRegressor().fit(X, np.full(10, 3.0))
        assert model.root_.is_leaf
        assert model.predict([[99.0]])[0] == pytest.approx(3.0)

    def test_count_leaves(self):
        X = np.arange(8, dtype=float).reshape(-1, 1)
        y = (X[:, 0] > 3).astype(float)
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert model.n_leaves_ == 2
