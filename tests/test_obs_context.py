"""Tests for request-correlated telemetry: scopes, stamping, timeline."""

import json
import re

import pytest

from repro.core import DeepEye, select_top_k
from repro.core.enumeration import EnumerationConfig
from repro.obs import (
    EventLog,
    MetricsRegistry,
    Tracer,
    build_timeline,
    current_context,
    current_request_id,
    format_timeline,
    new_request_id,
    parse_exemplars,
    read_event_log,
    request_scope,
    timeline_request_ids,
)
from repro.obs.context import RequestContext


class TestRequestScope:
    def test_outside_any_scope_there_is_no_context(self):
        assert current_context() is None
        assert current_request_id() is None

    def test_ids_are_unique_and_well_formed(self):
        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100
        for rid in ids:
            assert re.fullmatch(r"[0-9a-f]{8}-[0-9a-f]+-[0-9a-f]{6}", rid)

    def test_scope_mints_and_restores(self):
        with request_scope() as context:
            assert current_request_id() == context.request_id
        assert current_request_id() is None

    def test_nested_scope_reuses_enclosing_by_default(self):
        with request_scope() as outer:
            with request_scope() as inner:
                assert inner.request_id == outer.request_id

    def test_fresh_forces_new_id_and_links_parent(self):
        with request_scope() as outer:
            with request_scope(fresh=True) as inner:
                assert inner.request_id != outer.request_id
                assert inner.parent_id == outer.request_id

    def test_explicit_id_reenters_cross_process_style(self):
        rid = new_request_id()
        with request_scope(rid) as context:
            assert context.request_id == rid
            assert current_request_id() == rid

    def test_attrs_are_carried(self):
        with request_scope(table="flights") as context:
            assert context.attrs == {"table": "flights"}

    def test_context_is_frozen(self):
        with pytest.raises(AttributeError):
            RequestContext("x").request_id = "y"

    def test_exception_still_restores(self):
        with pytest.raises(RuntimeError):
            with request_scope():
                raise RuntimeError("boom")
        assert current_request_id() is None


class TestStamping:
    def test_spans_carry_the_scope_id(self, flights_table):
        tracer = Tracer()
        with request_scope() as context:
            select_top_k(flights_table, k=2, tracer=tracer)
        root = tracer.find("select_top_k")
        assert root.attributes["request_id"] == context.request_id
        for child in root.children:
            assert child.attributes["request_id"] == context.request_id

    def test_select_top_k_mints_its_own_scope(self, flights_table):
        # No enclosing scope: the selection still correlates its own
        # spans/events/provenance under a freshly minted id.
        tracer = Tracer()
        log = EventLog()
        result = select_top_k(
            flights_table, k=2, tracer=tracer, events=log,
            provenance=True,
        )
        rid = tracer.find("select_top_k").attributes["request_id"]
        assert rid is not None
        assert {event["request_id"] for event in log} == {rid}
        for record in result.provenance.values():
            assert record.request_id == rid

    def test_events_envelope_carries_the_id(self):
        log = EventLog()
        with request_scope() as context:
            log.emit("phase", phase="enumerate")
        (event,) = list(log)
        assert event["request_id"] == context.request_id

    def test_exemplars_only_inside_a_scope(self):
        registry = MetricsRegistry()
        registry.counter("outside_total").inc()
        with request_scope() as context:
            registry.counter("inside_total").inc()
        text = registry.to_prometheus_text()
        exemplars = parse_exemplars(text)
        assert [e["name"] for e in exemplars] == ["inside_total"]
        assert exemplars[0]["request_id"] == context.request_id


class TestTimeline:
    def _streams(self):
        rid = "req-1"
        events = [
            {"v": 4, "seq": 1, "ts": 10.0, "kind": "request",
             "request_id": rid, "table": "t"},
            {"v": 4, "seq": 2, "ts": 11.0, "kind": "score",
             "request_id": rid, "node_id": "bar|x|y", "rank": 1},
            {"v": 4, "seq": 3, "ts": 12.0, "kind": "rank",
             "request_id": "other", "table": "u"},
        ]
        trace = {
            "epoch_unix": 9.0,
            "spans": [
                {"name": "select_top_k", "start": 1.5, "duration": 2.0,
                 "attributes": {"request_id": rid},
                 "children": [
                     {"name": "enumerate", "start": 1.6,
                      "duration": 1.0,
                      "attributes": {"request_id": rid}},
                 ]},
            ],
        }
        exemplars = [
            {"name": "selection_runs_total", "labels": {}, "value": 1.0,
             "ts": 12.5, "request_id": rid},
            {"name": "selection_runs_total", "labels": {}, "value": 2.0,
             "ts": 12.6, "request_id": "other"},
        ]
        return rid, events, trace, exemplars

    def test_join_filters_orders_and_classifies(self):
        rid, events, trace, exemplars = self._streams()
        records = build_timeline(
            events, trace=trace, exemplars=exemplars, request_id=rid
        )
        assert [r["stream"] for r in records] == [
            "event", "span", "span", "provenance", "exemplar"
        ]
        assert all(r["request_id"] == rid for r in records)
        timestamps = [r["ts"] for r in records]
        assert timestamps == sorted(timestamps)

    def test_unfiltered_keeps_everything(self):
        _, events, trace, exemplars = self._streams()
        records = build_timeline(events, trace=trace, exemplars=exemplars)
        assert len(records) == 7

    def test_chrome_trace_form_is_accepted(self):
        rid = "req-1"
        trace = {
            "epochUnix": 100.0,
            "traceEvents": [
                {"name": "select_top_k", "ph": "X", "ts": 2e6,
                 "dur": 1e6, "pid": 1, "tid": 1,
                 "args": {"request_id": rid}},
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
                 "args": {"name": "worker"}},
            ],
        }
        records = build_timeline(trace=trace, request_id=rid)
        (record,) = records
        assert record["ts"] == pytest.approx(102.0)
        assert record["detail"]["duration"] == pytest.approx(1.0)

    def test_request_ids_in_first_seen_order(self):
        events = [
            {"request_id": "b"}, {"request_id": "a"},
            {"request_id": "b"}, {"kind": "phase"},
        ]
        assert timeline_request_ids(events) == ["b", "a"]

    def test_format_renders_one_line_per_record(self):
        rid, events, trace, exemplars = self._streams()
        records = build_timeline(
            events, trace=trace, exemplars=exemplars, request_id=rid
        )
        text = format_timeline(records)
        assert len(text.rstrip("\n").split("\n")) == len(records)
        assert text.startswith("+   0.0000s")
        assert format_timeline([]) == "(empty timeline)\n"


class TestBatchCorrelation:
    """The acceptance path: a process-worker batch reconstructs per
    table as one request across all four streams."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_batch_run_yields_one_coherent_request_per_table(
        self, flights_table, tiny_table, tmp_path, backend
    ):
        log_path = str(tmp_path / "events.jsonl")
        registry = MetricsRegistry()
        tracer = Tracer()
        events = EventLog(path=log_path)
        engine = DeepEye(
            ranking="partial_order",
            config=EnumerationConfig(n_jobs=2, backend=backend),
            trace=tracer,
            metrics=registry,
            events=events,
        )
        results = list(
            engine.top_k_batch([flights_table, tiny_table], k=2)
        )
        assert len(results) == 2
        events.close()

        recorded = read_event_log(log_path)
        request_ids = timeline_request_ids(recorded)
        assert len(request_ids) == 2
        trace = tracer.to_dict()
        exemplars = parse_exemplars(registry.to_prometheus_text())

        for rid, table in zip(request_ids, [flights_table, tiny_table]):
            records = build_timeline(
                recorded, trace=trace, exemplars=exemplars,
                request_id=rid,
            )
            streams = {record["stream"] for record in records}
            assert streams == {"event", "span", "provenance", "exemplar"}
            assert all(r["request_id"] == rid for r in records)
            timestamps = [r["ts"] for r in records]
            assert timestamps == sorted(timestamps)
            # The worker-side request event names the right table.
            (request_event,) = [
                r for r in records
                if r["stream"] == "event" and r["name"] == "request"
            ]
            assert request_event["detail"]["table"] == table.name
            # And the selection span made it across the pool boundary.
            span_names = {
                r["name"] for r in records if r["stream"] == "span"
            }
            assert "select_top_k" in span_names

    def test_adopted_worker_spans_are_tagged(self, flights_table):
        tracer = Tracer()
        engine = DeepEye(
            ranking="partial_order",
            config=EnumerationConfig(n_jobs=2, backend="process"),
            trace=tracer,
            cache=False,  # a result-cache hit would skip the second span
        )
        list(engine.top_k_batch([flights_table, flights_table], k=2))
        adopted = [
            span for span in tracer.spans
            if span.attributes.get("worker") is not None
        ]
        assert len(adopted) == 2
        for span in adopted:
            assert span.name == "select_top_k"
            assert span.attributes["worker"].startswith("pid-")


class TestCliTimeline:
    def test_cli_round_trip(self, flights_table, tmp_path, capsys):
        from repro.cli import main
        from repro.dataset import write_csv

        csv_path = str(tmp_path / "t.csv")
        write_csv(flights_table, csv_path)
        log_path = str(tmp_path / "events.jsonl")
        trace_path = str(tmp_path / "trace.json")
        metrics_path = str(tmp_path / "metrics.txt")
        assert main([
            "visualize", csv_path, "--k", "2", "--format", "list",
            "--events", log_path, "--trace", trace_path,
            "--metrics", metrics_path,
        ]) == 0
        capsys.readouterr()

        assert main(["obs", "timeline", log_path, "--list"]) == 0
        rid = capsys.readouterr().out.strip()
        assert rid

        assert main([
            "obs", "timeline", log_path, "--request", rid,
            "--trace", trace_path, "--metrics", metrics_path,
        ]) == 0
        text = capsys.readouterr().out
        assert rid in text
        for stream in ("event", "span", "provenance", "exemplar"):
            assert stream in text
        # The input trace must survive the read (regression: the
        # timeline's --trace used to collide with the writer flag).
        with open(trace_path) as handle:
            assert json.load(handle)["traceEvents"]

    def test_cli_json_and_ambiguity(self, tmp_path, capsys):
        from repro.cli import main

        log_path = str(tmp_path / "events.jsonl")
        log = EventLog(path=log_path)
        with request_scope():
            log.emit("phase", phase="a")
        with request_scope():
            log.emit("phase", phase="b")
        log.close()
        assert main(["obs", "timeline", log_path]) == 2
        capsys.readouterr()
        rid = timeline_request_ids(read_event_log(log_path))[0]
        assert main([
            "obs", "timeline", log_path, "--request", rid, "--json"
        ]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [r["request_id"] for r in records] == [rid]
