"""Golden snapshots and drift classification (repro.obs.drift)."""

import pytest

from repro.core import select_top_k
from repro.core.partial_order import PartialOrderScorer
from repro.obs.drift import (
    SNAPSHOT_SCHEMA_VERSION,
    build_snapshot,
    classify_drift,
    diff_snapshots,
    entry_from_result,
    format_drift_report,
    kendall_tau,
    load_snapshot,
    save_snapshot,
    top_k_overlap,
)


class TestRankStatistics:
    def test_kendall_tau_bounds(self):
        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0
        # One discordant pair (b, c) out of six: (5 - 1) / 6.
        assert kendall_tau(["a", "b", "c", "d"], ["a", "c", "b", "d"]) == pytest.approx(
            2 / 3
        )

    def test_kendall_tau_over_common_elements_only(self):
        # Only a and c are shared; their relative order flips.
        assert kendall_tau(["a", "x", "c"], ["c", "y", "a"]) == -1.0
        assert kendall_tau(["a"], ["a"]) == 1.0
        assert kendall_tau([], []) == 1.0

    def test_top_k_overlap(self):
        assert top_k_overlap(["a", "b"], ["a", "b"]) == 1.0
        assert top_k_overlap(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert top_k_overlap([], []) == 1.0
        assert top_k_overlap(["a"], []) == 0.0


def _entry(chart_ids, scores=None, fingerprint="fp", table="t"):
    return {
        "table": table,
        "fingerprint": fingerprint,
        "candidates": 10,
        "valid": len(chart_ids),
        "k": len(chart_ids),
        "chart_ids": list(chart_ids),
        "scores": list(scores if scores is not None else []),
    }


class TestClassification:
    def test_identical(self):
        report = classify_drift(
            _entry(["a", "b"], [1.0, 0.5]), _entry(["a", "b"], [1.0, 0.5])
        )
        assert report["kind"] == "identical"
        assert report["kendall_tau"] == 1.0
        assert report["overlap"] == 1.0

    def test_score_noise_below_tolerance_is_identical(self):
        report = classify_drift(
            _entry(["a"], [1.0]), _entry(["a"], [1.0 + 1e-12])
        )
        assert report["kind"] == "identical"

    def test_score_shifted(self):
        report = classify_drift(
            _entry(["a", "b"], [1.0, 0.5]), _entry(["a", "b"], [1.0, 0.4])
        )
        assert report["kind"] == "score_shifted"
        assert report["max_score_delta"] == pytest.approx(0.1)

    def test_reordered(self):
        report = classify_drift(_entry(["a", "b"]), _entry(["b", "a"]))
        assert report["kind"] == "reordered"
        assert report["kendall_tau"] == -1.0
        assert report["overlap"] == 1.0

    def test_churned(self):
        report = classify_drift(_entry(["a", "b"]), _entry(["a", "c"]))
        assert report["kind"] == "churned"
        assert "input_changed" not in report

    def test_changed_fingerprint_flags_input_change(self):
        report = classify_drift(
            _entry(["a"], fingerprint="old"), _entry(["a"], fingerprint="new")
        )
        assert report["kind"] == "churned"
        assert report["input_changed"] is True

    def test_diff_counts_missing_and_added(self):
        old = build_snapshot([_entry(["a"], table="kept"),
                              _entry(["a"], table="gone")], k=1)
        new = build_snapshot([_entry(["a"], table="kept"),
                              _entry(["a"], table="fresh")], k=1)
        report = diff_snapshots(old, new)
        assert report["counts"] == {"identical": 1, "missing": 1, "added": 1}
        assert report["clean"] is False
        kinds = {r["table"]: r["kind"] for r in report["tables"]}
        assert kinds == {"kept": "identical", "gone": "missing",
                         "fresh": "added"}

    def test_format_drift_report(self):
        old = build_snapshot([_entry(["a", "b"], table="t")], k=2)
        new = build_snapshot([_entry(["b", "a"], table="t")], k=2)
        text = format_drift_report(diff_snapshots(old, new))
        assert "drift: reordered=1" in text
        assert "t" in text and "tau" in text


class TestSchemaVersioning:
    def test_schema_is_v2_for_compositional_fingerprints(self):
        # v2 marks the rolling/compositional table-fingerprint format;
        # hashes written under v1 are not comparable to v2 hashes.
        assert SNAPSHOT_SCHEMA_VERSION == 2

    def test_cross_schema_diff_skips_fingerprint_comparison(self):
        # A fingerprint-format bump changes every hash with no data
        # change; only chart ids and scores are compared across schemas.
        old = build_snapshot([_entry(["a"], [1.0], fingerprint="v1-hash")], k=1)
        old["schema"] = SNAPSHOT_SCHEMA_VERSION - 1
        new = build_snapshot([_entry(["a"], [1.0], fingerprint="v2-hash")], k=1)
        report = diff_snapshots(old, new)
        assert report["clean"] is True

    def test_cross_schema_diff_still_sees_real_drift(self):
        old = build_snapshot([_entry(["a"], fingerprint="v1-hash")], k=1)
        old["schema"] = SNAPSHOT_SCHEMA_VERSION - 1
        new = build_snapshot([_entry(["b"], fingerprint="v2-hash")], k=1)
        (entry,) = diff_snapshots(old, new)["tables"]
        assert entry["kind"] == "churned"
        assert "input_changed" not in entry

    def test_same_schema_diff_still_flags_input_change(self):
        old = build_snapshot([_entry(["a"], fingerprint="x")], k=1)
        new = build_snapshot([_entry(["a"], fingerprint="y")], k=1)
        (entry,) = diff_snapshots(old, new)["tables"]
        assert entry["kind"] == "churned"
        assert entry["input_changed"] is True

    def test_classify_drift_can_skip_fingerprints(self):
        # The incremental engine's churn check: rows were appended, so
        # the input hash differs by construction.
        report = classify_drift(
            _entry(["a"], [1.0], fingerprint="old"),
            _entry(["a"], [1.0], fingerprint="new"),
            compare_fingerprints=False,
        )
        assert report["kind"] == "identical"


class TestSnapshotIO:
    def test_save_load_round_trip(self, tmp_path):
        snapshot = build_snapshot(
            [_entry(["a"])], k=1, config={"scale": 0.05, "seed": 0}
        )
        path = tmp_path / "golden.json"
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)
        assert loaded == snapshot
        assert loaded["schema"] == SNAPSHOT_SCHEMA_VERSION

    def test_load_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "golden.json"
        save_snapshot(
            {"schema": SNAPSHOT_SCHEMA_VERSION + 1, "tables": []}, path
        )
        with pytest.raises(ValueError, match="newer"):
            load_snapshot(path)


class _WeightPerturbedRanker:
    """Partial-order ranking under deliberately skewed factor weights —
    the quality regression the drift gate must catch."""

    def __init__(self, wm=1.0, wq=1.0, ww=-2.0):
        self.weights = (wm, wq, ww)

    def rank(self, nodes):
        factors = PartialOrderScorer().score(nodes)
        wm, wq, ww = self.weights
        keys = [wm * f.m + wq * f.q + ww * f.w for f in factors]
        return sorted(range(len(nodes)), key=lambda i: (-keys[i], i))


class TestEndToEndDrift:
    def _snapshot(self, table, k=50, **kwargs):
        result = select_top_k(table, k=k, provenance=True, **kwargs)
        entry = entry_from_result(
            table.name, table.fingerprint(), result
        )
        return build_snapshot([entry], k=k)

    def test_same_commit_replay_is_drift_free(self, flights_table):
        old = self._snapshot(flights_table)
        new = self._snapshot(flights_table)
        report = diff_snapshots(old, new)
        assert report["clean"] is True
        assert report["counts"] == {"identical": 1}

    def test_weight_perturbation_is_detected_as_reordered(self, flights_table):
        # k exceeds the valid-candidate count, so both runs emit the same
        # chart *set* and only the order can move.
        golden = self._snapshot(flights_table, k=500)
        perturbed = self._snapshot(
            flights_table, k=500, ranker=_WeightPerturbedRanker()
        )
        report = diff_snapshots(golden, perturbed)
        (entry,) = report["tables"]
        assert entry["kind"] == "reordered"
        assert entry["overlap"] == 1.0
        assert entry["kendall_tau"] < 1.0

    def test_entry_pulls_scores_from_provenance(self, flights_table):
        result = select_top_k(flights_table, k=3, provenance=True)
        entry = entry_from_result(
            flights_table.name, flights_table.fingerprint(), result
        )
        assert len(entry["scores"]) == len(entry["chart_ids"]) == 3
        assert entry["scores"][0] >= entry["scores"][-1]
        plain = select_top_k(flights_table, k=3)
        bare = entry_from_result(
            flights_table.name, flights_table.fingerprint(), plain
        )
        assert bare["scores"] == []
