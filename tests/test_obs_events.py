"""Unit tests for the structured decision-event log (repro.obs.events)."""

import json
import pickle

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    EVENT_LOG_SCHEMA_VERSION,
    EventLog,
    aggregate_events,
    format_event_report,
    read_event_log,
)


class TestWriter:
    def test_append_stamps_schema_and_sequence(self):
        log = EventLog()
        log.begin_request(table="t", k=3)
        log.emit("phase", phase="enumerate", seconds=0.5)
        records = list(log)
        assert [r["kind"] for r in records] == ["request", "phase"]
        assert [r["seq"] for r in records] == [1, 2]
        assert all(r["v"] == EVENT_LOG_SCHEMA_VERSION for r in records)
        assert records[0]["table"] == "t" and records[0]["k"] == 3

    def test_unknown_kind_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event kind"):
            log.emit("bogus")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="sample_rate"):
            EventLog(sample_rate=1.5)
        with pytest.raises(ValueError, match="max_bytes"):
            EventLog(path="x.jsonl", max_bytes=0)

    def test_non_jsonable_fields_are_stringified(self):
        log = EventLog()
        log.emit("error", error=ValueError("boom"), extra={"a": (1, 2)})
        record = log.by_kind("error")[0]
        json.dumps(record)  # every field round-trips through JSON
        assert record["error"] == "boom"
        assert record["extra"] == {"a": [1, 2]}

    def test_in_memory_tail_is_bounded(self):
        log = EventLog(max_events=3)
        log.begin_request()
        for i in range(5):
            log.emit("phase", phase=f"p{i}")
        assert len(log) == 3
        assert [e["phase"] for e in log] == ["p2", "p3", "p4"]

    def test_by_kind_filters(self):
        log = EventLog()
        log.begin_request(table="t")
        log.emit("prune", rule="dedup", count=4)
        log.emit("prune", rule="pie_avg", count=1)
        assert len(log.by_kind("prune")) == 2
        assert log.by_kind("rank") == []


class TestSampling:
    def test_sampling_is_request_granular(self):
        log = EventLog(sample_rate=0.5)
        for i in range(4):
            log.begin_request(index=i)
            log.emit("rank", chart_ids=[])
        # floor(i * 0.5) advances on every second request.
        assert log.requests_seen == 4
        assert log.requests_dropped == 2
        kept = [e["index"] for e in log.by_kind("request")]
        assert len(kept) == 2
        # A dropped request drops *all* of its events.
        assert len(log.by_kind("rank")) == 2

    def test_sampling_is_deterministic(self):
        def run():
            log = EventLog(sample_rate=0.3)
            for i in range(10):
                log.begin_request(index=i)
            return [e["index"] for e in log.by_kind("request")]

        assert run() == run()

    def test_zero_rate_drops_everything(self):
        log = EventLog(sample_rate=0.0)
        assert log.begin_request() is False
        log.emit("rank", chart_ids=[])
        assert len(log) == 0


class TestFileAndRotation:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path=str(path)) as log:
            log.begin_request(table="t")
            log.emit("rank", chart_ids=["a", "b"])
        events = read_event_log(path)
        assert [e["kind"] for e in events] == ["request", "rank"]
        assert events[1]["chart_ids"] == ["a", "b"]

    def test_rotation_keeps_bounded_backups_and_reads_in_order(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path), max_bytes=200, max_backups=2)
        log.begin_request()
        for i in range(40):
            log.emit("phase", phase=f"p{i:02d}")
        log.close()
        assert path.exists()
        assert (tmp_path / "events.jsonl.1").exists()
        assert not (tmp_path / "events.jsonl.3").exists()
        events = read_event_log(path)
        # Oldest-surviving-first: phase names strictly increase.
        names = [e["phase"] for e in events if e["kind"] == "phase"]
        assert names == sorted(names)

    def test_reader_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps({"v": EVENT_LOG_SCHEMA_VERSION + 1, "kind": "rank"})
            + "\n"
        )
        with pytest.raises(ValueError, match="newer"):
            read_event_log(path)


class TestMerge:
    def test_merge_preserves_input_order_and_resequences(self):
        log = EventLog()
        log.begin_request(table="t")
        worker = [
            {"v": 1, "seq": 9, "ts": 123.0, "kind": "phase",
             "phase": "enumerate_task", "column": "a"},
            {"v": 1, "seq": 10, "ts": 124.0, "kind": "phase",
             "phase": "enumerate_task", "column": "b"},
        ]
        log.merge(worker)
        merged = log.by_kind("phase")
        assert [e["column"] for e in merged] == ["a", "b"]
        assert [e["seq"] for e in merged] == [2, 3]
        assert [e["worker_ts"] for e in merged] == [123.0, 124.0]

    def test_pickle_round_trip(self):
        log = EventLog()
        log.begin_request(table="t")
        clone = pickle.loads(pickle.dumps(log))
        clone.emit("rank", chart_ids=[])  # restored lock works
        assert len(clone) == 2


class TestAggregator:
    def _stream(self):
        log = EventLog()
        log.begin_request(table="flights", k=3)
        log.emit("phase", phase="enumerate", seconds=0.2, table="flights",
                 considered=10, emitted=6)
        log.emit("prune", rule="dedup", count=3, table="flights")
        log.emit("prune", rule="pie_avg", count=1, table="flights")
        log.emit("cache", table="flights",
                 results={"hits": 0, "misses": 1, "evictions": 0, "size": 1})
        log.begin_request(table="flights", k=3)
        log.emit("cache", result_cache_hit=True, table="flights")
        log.emit("error", error="ValueError: boom")
        return list(log)

    def test_aggregate_rolls_up_phases_rules_tables(self):
        summary = aggregate_events(self._stream())
        assert summary["requests"] == 2
        assert summary["phases"]["enumerate"]["count"] == 1
        assert summary["phases"]["enumerate"]["mean_seconds"] == pytest.approx(0.2)
        assert summary["rules"] == {"dedup": 3, "pie_avg": 1}
        flights = summary["tables"]["flights"]
        assert flights["requests"] == 2
        assert flights["considered"] == 10
        assert flights["emitted"] == 6
        assert flights["pruned"] == 4
        assert flights["result_cache_hits"] == 1
        # The invariant the sampler guarantees per request:
        assert flights["considered"] == flights["emitted"] + flights["pruned"]
        assert summary["cache"]["results_misses"] == 1
        assert len(summary["errors"]) == 1

    def test_format_event_report_renders_all_sections(self):
        text = format_event_report(aggregate_events(self._stream()))
        assert "events: 8  requests: 2" in text
        assert "per-phase:" in text
        assert "per-rule pruning:" in text
        assert "per-table:" in text
        assert "dedup" in text and "flights" in text
        assert "errors: 1" in text

    def test_every_kind_is_accepted(self):
        log = EventLog()
        log.begin_request()
        for kind in EVENT_KINDS:
            if kind != "request":
                log.emit(kind)
        summary = aggregate_events(list(log))
        assert summary["events"] == len(EVENT_KINDS)


class TestLevelsNamespacing:
    """Schema v2: cache events nest per-level counters under ``levels``
    so identical counter names across levels cannot collide."""

    def test_aggregate_unpacks_levels(self):
        log = EventLog()
        log.begin_request(table="t")
        log.emit("cache", table="t", levels={
            "transforms": {"hits": 2, "misses": 1},
            "results": {"hits": 1, "misses": 0},
            "disk": {"hits": 3, "stores": 4},
        })
        summary = aggregate_events(list(log))
        assert summary["cache"]["transforms_hits"] == 2
        assert summary["cache"]["transforms_misses"] == 1
        assert summary["cache"]["results_hits"] == 1
        assert summary["cache"]["disk_hits"] == 3
        assert summary["cache"]["disk_stores"] == 4

    def test_v1_flat_dicts_still_aggregate(self):
        # pre-v2 logs on disk spread level dicts at the top of the
        # payload; the reader keeps accepting them
        log = EventLog()
        log.begin_request(table="t")
        log.emit("cache", table="t",
                 results={"hits": 5, "misses": 2})
        summary = aggregate_events(list(log))
        assert summary["cache"]["results_hits"] == 5
        assert summary["cache"]["results_misses"] == 2

    def test_schema_version_is_four(self):
        # v4: the envelope gained an optional request_id field
        assert EVENT_LOG_SCHEMA_VERSION == 4


class TestSchemaBackCompat:
    """v2/v3 logs on disk keep parsing through the v4 reader."""

    def _write(self, path, records):
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")

    def test_v2_and_v3_records_still_read_and_aggregate(self, tmp_path):
        path = tmp_path / "old.jsonl"
        self._write(path, [
            # v2: no source_* fields, no request_id
            {"v": 2, "seq": 1, "ts": 1.0, "kind": "request",
             "table": "t", "k": 3},
            {"v": 2, "seq": 2, "ts": 1.5, "kind": "phase",
             "phase": "enumerate", "table": "t", "seconds": 0.5},
            # v3: request events gained source_* fields
            {"v": 3, "seq": 3, "ts": 2.0, "kind": "request",
             "table": "u", "k": 3, "source_kind": "csv"},
            {"v": 3, "seq": 4, "ts": 2.5, "kind": "rank",
             "table": "u", "k": 3, "chart_ids": ["a"]},
        ])
        records = read_event_log(path)
        assert len(records) == 4
        assert all("request_id" not in record for record in records)
        summary = aggregate_events(records)
        assert summary["requests"] == 2
        assert summary["phases"]["enumerate"]["count"] == 1

    def test_newer_schema_still_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        self._write(path, [
            {"v": EVENT_LOG_SCHEMA_VERSION + 1, "seq": 1, "ts": 1.0,
             "kind": "request"},
        ])
        with pytest.raises(ValueError, match="newer than this reader"):
            read_event_log(path)

    def test_mixed_old_and_new_logs_join_in_a_timeline(self, tmp_path):
        from repro.obs import build_timeline, request_scope

        path = tmp_path / "mixed.jsonl"
        self._write(path, [
            {"v": 2, "seq": 1, "ts": 1.0, "kind": "phase",
             "phase": "enumerate", "table": "t"},
        ])
        log = EventLog(path=str(path))
        with request_scope() as context:
            log.emit("phase", phase="rank", table="t")
        log.close()
        records = read_event_log(path)
        assert len(records) == 2
        # The old record has no id, so a filtered timeline only shows
        # the new one — and an unfiltered one shows both.
        assert len(build_timeline(records, request_id=context.request_id)) == 1
        assert len(build_timeline(records)) == 2

    def test_merge_preserves_worker_request_ids(self):
        from repro.obs import request_scope

        worker_log = EventLog()
        with request_scope("worker-req-1"):
            worker_log.emit("phase", phase="enumerate", table="t")
        parent_log = EventLog()
        with request_scope("parent-req-9"):
            parent_log.merge(list(worker_log))
        (merged,) = list(parent_log)
        assert merged["request_id"] == "worker-req-1"


class TestEngineCoercion:
    def test_events_true_builds_a_fresh_log(self, flights_table):
        from repro.core import DeepEye
        from repro.obs.events import EventLog as Log

        engine = DeepEye(ranking="partial_order", events=True)
        assert isinstance(engine.events, Log)
        engine.top_k(flights_table, k=2)
        assert engine.events.by_kind("request")

    def test_empty_event_log_instance_is_kept(self):
        from repro.core import DeepEye

        log = EventLog()
        assert DeepEye(ranking="partial_order", events=log).events is log
        assert DeepEye(ranking="partial_order", events=False).events is None
