"""Tests for SLO burn-rate monitoring and the runtime vitals sampler."""

import threading

import pytest

from repro.core import DeepEye
from repro.engine import MultiLevelCache
from repro.obs import (
    SLO,
    MetricsRegistry,
    RuntimeSampler,
    SLOMonitor,
    read_rss_bytes,
)
from repro.obs.health import DEFAULT_WINDOWS


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSLOValidation:
    def test_target_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            SLO(name="x", target=1.0)
        with pytest.raises(ValueError):
            SLO(name="x", target=0.0)

    def test_latency_kind_requires_threshold(self):
        with pytest.raises(ValueError):
            SLO(name="x", target=0.99, kind="latency")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SLO(name="x", target=0.99, kind="quantile")

    def test_duplicate_names_rejected(self):
        monitor = SLOMonitor()
        monitor.add(SLO(name="x", target=0.9))
        with pytest.raises(ValueError):
            monitor.add(SLO(name="x", target=0.9))


class TestBurnRates:
    def test_burn_rate_math(self):
        clock = FakeClock()
        monitor = SLOMonitor(
            objectives=[SLO(name="errors", target=0.9,
                            windows=((60.0, 2.0),))],
            clock=clock,
        )
        # 8 good + 2 bad = 90% compliance = burn exactly 1.0
        for _ in range(8):
            monitor.record_outcome("errors", True)
        for _ in range(2):
            monitor.record_outcome("errors", False)
        status = monitor.status("errors")
        window = status.windows[60.0]
        assert window["compliance"] == pytest.approx(0.8)
        assert window["burn_rate"] == pytest.approx(2.0)
        assert status.compliance == pytest.approx(0.8)

    def test_outcomes_age_out_of_the_window(self):
        clock = FakeClock()
        monitor = SLOMonitor(
            objectives=[SLO(name="errors", target=0.9,
                            windows=((60.0, 2.0),))],
            clock=clock,
        )
        monitor.record_outcome("errors", False)
        clock.advance(120.0)
        monitor.record_outcome("errors", True)
        window = monitor.status("errors").windows[60.0]
        assert window["total"] == 1.0
        assert window["burn_rate"] == 0.0
        # All-time accounting keeps the aged-out record.
        assert monitor.status("errors").total == 2

    def test_alert_requires_every_window_burning(self):
        clock = FakeClock()
        monitor = SLOMonitor(
            objectives=[SLO(
                name="errors", target=0.9,
                windows=((60.0, 2.0), (600.0, 1.0)),
            )],
            clock=clock,
        )
        # Old good traffic keeps the long window healthy even while
        # the short window burns hard.
        for _ in range(50):
            monitor.record_outcome("errors", True)
        clock.advance(300.0)
        for _ in range(4):
            monitor.record_outcome("errors", False)
        status = monitor.status("errors")
        assert status.windows[60.0]["burn_rate"] >= 2.0
        assert not status.alerting

        # Sustained failure lights both windows.
        for _ in range(80):
            monitor.record_outcome("errors", False)
        assert monitor.status("errors").alerting
        assert monitor.alerting() == ["errors"]
        assert monitor.snapshot()["healthy"] is False

    def test_empty_window_never_alerts(self):
        monitor = SLOMonitor(
            objectives=[SLO(name="errors", target=0.9)],
            clock=FakeClock(),
        )
        assert not monitor.status("errors").alerting

    def test_alert_callback_fires_on_transition_only(self):
        clock = FakeClock()
        monitor = SLOMonitor(
            objectives=[SLO(name="errors", target=0.9,
                            windows=((60.0, 1.0),))],
            clock=clock,
        )
        fired = []
        monitor.on_alert(lambda status: fired.append(status.name))
        for _ in range(5):
            monitor.record_outcome("errors", False)
        assert fired == ["errors"]
        # Recovery, then a fresh breach fires again.
        clock.advance(120.0)
        monitor.record_outcome("errors", True)
        monitor.record_outcome("errors", False)
        monitor.record_outcome("errors", False)
        assert fired == ["errors", "errors"]

    def test_latency_judged_against_threshold(self):
        monitor = SLOMonitor(
            objectives=[SLO(name="lat", target=0.5, kind="latency",
                            threshold=0.25, windows=((60.0, 2.0),))],
            clock=FakeClock(),
        )
        monitor.record_latency("lat", 0.1)
        monitor.record_latency("lat", 0.25)
        monitor.record_latency("lat", 0.9)
        status = monitor.status("lat")
        assert status.good == 2
        assert status.total == 3

    def test_unknown_objectives_are_ignored(self):
        monitor = SLOMonitor()
        monitor.record_latency("nope", 1.0)
        monitor.record_outcome("nope", False)
        with pytest.raises(KeyError):
            monitor.status("nope")

    def test_default_objectives_and_windows(self):
        monitor = SLOMonitor.with_default_objectives()
        assert set(monitor.names) == {
            "selection_latency", "selection_errors", "cache_hit_rate"
        }
        status = monitor.status("selection_latency")
        assert set(status.windows) == {w for w, _ in DEFAULT_WINDOWS}
        payload = status.to_dict()
        assert payload["name"] == "selection_latency"
        assert "300.0" in payload["windows"]


class TestPipelineFeed:
    def test_engine_records_latency_errors_and_cache_hits(
        self, flights_table
    ):
        clock = FakeClock()
        monitor = SLOMonitor.with_default_objectives(clock=clock)
        engine = DeepEye(
            ranking="partial_order", cache=MultiLevelCache(), slo=monitor
        )
        engine.top_k(flights_table, k=2)
        engine.top_k(flights_table, k=2)  # result-cache hit
        latency = monitor.status("selection_latency")
        errors = monitor.status("selection_errors")
        hits = monitor.status("cache_hit_rate")
        assert latency.total == 2
        assert errors.total == 2 and errors.good == 2
        assert hits.total == 2 and hits.good == 1

    def test_batch_feeds_one_outcome_per_table(
        self, flights_table, tiny_table
    ):
        monitor = SLOMonitor.with_default_objectives(clock=FakeClock())
        engine = DeepEye(ranking="partial_order", slo=monitor)
        list(engine.top_k_batch([flights_table, tiny_table], k=2))
        assert monitor.status("selection_latency").total == 2
        assert monitor.status("selection_errors").good == 2

    def test_slo_true_builds_default_monitor_and_unpickles(
        self, flights_table
    ):
        import pickle

        engine = DeepEye(ranking="partial_order", slo=True)
        assert isinstance(engine.slo, SLOMonitor)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.slo is None
        assert len(clone.top_k(flights_table, k=2).nodes) == 2


class TestRuntimeSampler:
    def test_sample_once_sets_the_vitals_gauges(self):
        registry = MetricsRegistry()
        sampler = RuntimeSampler(registry)
        vitals = sampler.sample_once()
        assert vitals["process_threads"] >= 1
        assert vitals["process_rss_bytes"] > 0
        text = registry.to_prometheus_text()
        assert "process_rss_bytes" in text
        assert "process_gc_gen0_objects" in text
        assert "process_threads" in text

    def test_queue_depth_mapping_provider(self):
        registry = MetricsRegistry()
        sampler = RuntimeSampler(registry)
        cache = MultiLevelCache()
        cache.transforms.put("k", 1)
        sampler.register_queue("serving_cache", cache.level_sizes)
        vitals = sampler.sample_once()
        assert vitals["queue_depth:serving_cache:transforms"] == 1
        assert vitals["queue_depth:serving_cache:features"] == 0
        text = registry.to_prometheus_text()
        assert 'queue_depth{key="transforms",queue="serving_cache"}' in text

    def test_queue_depth_scalar_and_failing_providers(self):
        registry = MetricsRegistry()
        sampler = RuntimeSampler(registry)
        sampler.register_queue("pending", lambda: 7)
        sampler.register_queue("broken", lambda: 1 / 0)
        vitals = sampler.sample_once()
        assert vitals["queue_depth:pending"] == 7
        assert not any(key.endswith("broken") for key in vitals)

    def test_background_thread_samples_and_stops(self):
        registry = MetricsRegistry()
        with RuntimeSampler(registry, interval=0.01) as sampler:
            deadline = threading.Event()
            deadline.wait(0.1)
        assert sampler.samples_taken >= 1
        assert sampler._thread is None

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            RuntimeSampler(MetricsRegistry(), interval=0.0)

    def test_read_rss_bytes_on_linux(self):
        rss = read_rss_bytes()
        assert rss is not None and rss > 0
