"""Tests for observability wired through the pipeline and serving engine."""

import io
import json
import pickle

import pytest

from repro.cli import main
from repro.core import DeepEye, progressive_top_k, select_top_k
from repro.core.enumeration import EnumerationConfig
from repro.core.selection import PHASE_ORDER, SelectionResult
from repro.dataset import write_csv
from repro.engine import MultiLevelCache
from repro.obs import MetricsRegistry, Tracer, parse_prometheus_text


class TestSelectionTracing:
    def test_span_tree_has_the_three_phases(self, flights_table):
        tracer = Tracer()
        select_top_k(flights_table, k=3, tracer=tracer)
        (root,) = tracer.spans
        assert root.name == "select_top_k"
        assert [c.name for c in root.children] == list(PHASE_ORDER)
        assert root.attributes["table"] == "flights"
        assert root.attributes["search_space"] > 0
        assert root.attributes["candidates"] > 0

    def test_timings_are_the_span_durations(self, flights_table):
        tracer = Tracer()
        result = select_top_k(flights_table, k=3, tracer=tracer)
        root = tracer.spans[0]
        for child in root.children:
            assert result.timings[child.name] == child.duration
        assert set(result.timings) == set(PHASE_ORDER)

    def test_enumerate_span_counters_match_result(self, flights_table):
        tracer = Tracer()
        result = select_top_k(flights_table, k=3, tracer=tracer)
        enumerate_span = tracer.find("enumerate")
        assert enumerate_span.counters["candidates"] == result.candidates
        assert tracer.find("recognize").counters["valid"] == result.valid

    def test_result_cache_hit_emits_marker_span(self, flights_table):
        cache = MultiLevelCache()
        select_top_k(flights_table, k=3, cache=cache)
        tracer = Tracer()
        select_top_k(flights_table, k=3, cache=cache, tracer=tracer)
        (root,) = tracer.spans
        assert root.attributes.get("result_cache_hit") is True
        assert root.children == []


class TestPruningAccounting:
    def test_considered_equals_emitted_plus_pruned(self, flights_table):
        registry = MetricsRegistry()
        result = select_top_k(flights_table, k=3, metrics=registry)
        samples = parse_prometheus_text(registry.to_prometheus_text())
        considered = samples[("enumeration_considered_total", ())]
        emitted = samples[("enumeration_candidates_total", (("mode", "rules"),))]
        pruned = sum(
            value
            for (name, _), value in samples.items()
            if name == "enumeration_pruned_total"
        )
        assert emitted == result.candidates
        assert considered == emitted + pruned
        assert pruned > 0  # the rules always canonicalise orderings

    def test_exhaustive_mode_counts_inexecutable_variants(self, flights_table):
        registry = MetricsRegistry()
        result = select_top_k(
            flights_table, k=3, enumeration="exhaustive", metrics=registry
        )
        samples = parse_prometheus_text(registry.to_prometheus_text())
        considered = samples[("enumeration_considered_total", ())]
        emitted = samples[
            ("enumeration_candidates_total", (("mode", "exhaustive"),))
        ]
        pruned = sum(
            value
            for (name, _), value in samples.items()
            if name == "enumeration_pruned_total"
        )
        assert emitted == result.candidates
        assert considered == emitted + pruned

    def test_parallel_pruning_counters_match_serial(self, flights_table):
        serial = MetricsRegistry()
        select_top_k(flights_table, k=3, metrics=serial)
        parallel = MetricsRegistry()
        select_top_k(
            flights_table,
            k=3,
            metrics=parallel,
            config=EnumerationConfig(n_jobs=2, backend="thread"),
        )
        serial_samples = parse_prometheus_text(serial.to_prometheus_text())
        parallel_samples = parse_prometheus_text(parallel.to_prometheus_text())
        keys = [
            key
            for key in serial_samples
            if key[0]
            in ("enumeration_considered_total", "enumeration_pruned_total")
        ]
        assert keys
        for key in keys:
            assert parallel_samples[key] == serial_samples[key]
        # The thread pool also recorded per-worker task latency.
        assert any(
            name == "enumeration_task_seconds_count"
            for name, _ in parallel_samples
        )


class TestSelectionMetrics:
    def test_run_and_phase_metrics(self, flights_table):
        registry = MetricsRegistry()
        select_top_k(flights_table, k=3, metrics=registry)
        samples = parse_prometheus_text(registry.to_prometheus_text())
        assert samples[("selection_runs_total", (("enumeration", "rules"),))] == 1
        for phase in PHASE_ORDER:
            key = ("selection_phase_seconds_count", (("phase", phase),))
            assert samples[key] == 1
        assert samples[("selection_total_seconds_count", ())] == 1

    def test_cache_metrics_per_level(self, flights_table):
        registry = MetricsRegistry()
        cache = MultiLevelCache()
        select_top_k(flights_table, k=3, cache=cache, metrics=registry)
        select_top_k(flights_table, k=3, cache=cache, metrics=registry)
        samples = parse_prometheus_text(registry.to_prometheus_text())
        assert samples[("selection_result_cache_hits_total", ())] == 1
        assert samples[("cache_hits_total", (("level", "results"),))] == 1
        by_level = cache.stats_by_level()
        for level in ("transforms", "features", "results"):
            assert (
                samples[("cache_misses_total", (("level", level),))]
                == by_level[level]["misses"]
            )


class TestCacheStats:
    def test_stats_by_level_structure_and_rollup(self, flights_table):
        cache = MultiLevelCache()
        select_top_k(flights_table, k=3, cache=cache)
        levels = cache.stats_by_level()
        assert set(levels) == {"transforms", "features", "results", "aggregate"}
        for counter in ("hits", "misses", "evictions", "size"):
            assert levels["aggregate"][counter] == sum(
                levels[level][counter]
                for level in ("transforms", "features", "results")
            )


class TestProgressive:
    def test_progressive_trace_and_metrics(self, flights_table):
        tracer = Tracer()
        registry = MetricsRegistry()
        result = progressive_top_k(
            flights_table, k=3, tracer=tracer, metrics=registry
        )
        (root,) = tracer.spans
        assert root.name == "progressive_top_k"
        leaf_spans = [c for c in root.children if c.name == "open_leaf"]
        assert len(leaf_spans) == result.columns_opened
        assert sum(
            s.counters.get("materialised", 0) for s in leaf_spans
        ) == result.candidates_generated
        samples = parse_prometheus_text(registry.to_prometheus_text())
        assert samples[("progressive_runs_total", ())] == 1
        assert (
            samples[("progressive_columns_opened_total", ())]
            + samples[("progressive_columns_skipped_total", ())]
            == flights_table.num_columns
        )
        assert samples[("progressive_nodes_emitted_total", ())] == len(
            result.nodes
        )


class TestDeepEyeIntegration:
    def test_trace_true_builds_private_tracer(self, flights_table):
        engine = DeepEye(ranking="partial_order", trace=True, metrics=MetricsRegistry())
        engine.top_k(flights_table, k=2)
        assert engine.tracer.find("select_top_k") is not None

    def test_instrumented_engine_survives_pickling(self, flights_table):
        engine = DeepEye(
            ranking="partial_order", trace=True, metrics=MetricsRegistry()
        )
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.tracer is None
        assert clone.metrics is None
        # The clone still serves (uninstrumented).
        assert len(clone.top_k(flights_table, k=2).nodes) == 2

    def test_batch_slow_log_and_latency_metrics(self, flights_table):
        registry = MetricsRegistry()
        engine = DeepEye(
            ranking="partial_order",
            metrics=registry,
            slow_threshold=0.0,  # every table counts as slow
        )
        results = list(engine.top_k_batch([flights_table, flights_table], k=2))
        assert len(results) == 2
        assert len(engine.slow_tables) >= 1  # cached repeat may be instant
        entry = engine.slow_tables[0]
        assert set(entry) == {"table", "rows", "columns", "seconds", "worker"}
        assert entry["table"] == "flights"
        samples = parse_prometheus_text(registry.to_prometheus_text())
        batch_counts = [
            value
            for (name, _), value in samples.items()
            if name == "batch_task_seconds_count"
        ]
        assert sum(batch_counts) == 2
        assert samples[("batch_slow_tables_total", ())] >= 1


class TestPhases:
    def test_phases_ordered_and_fractions(self, flights_table):
        result = select_top_k(flights_table, k=2)
        phases = result.phases()
        assert [name for name, _, _ in phases] == list(PHASE_ORDER)
        assert sum(fraction for _, _, fraction in phases) == pytest.approx(1.0)

    def test_phases_zero_total_yields_zero_fractions(self):
        result = SelectionResult(
            nodes=[], order=[], candidates=0, valid=0,
            timings={"enumerate": 0.0, "custom": 0.0},
        )
        assert result.phase_fraction("enumerate") == 0.0
        assert result.phases() == [
            ("enumerate", 0.0, 0.0),
            ("custom", 0.0, 0.0),
        ]


class TestCliObservability:
    @pytest.fixture
    def csv_path(self, tmp_path, flights_table):
        path = tmp_path / "flights.csv"
        write_csv(flights_table, path)
        return str(path)

    def test_trace_and_metrics_end_to_end(self, csv_path, tmp_path):
        trace_path = tmp_path / "trace.json"
        out = io.StringIO()
        code = main(
            [
                "visualize", csv_path, "--k", "2", "--format", "list",
                "--trace", str(trace_path), "--metrics", "-",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        # The pretty-printer rendered the phase breakdown.
        assert "# phases: enumerate=" in text
        # (a) valid Chrome trace-event JSON with the nested phase spans.
        trace = json.loads(trace_path.read_text())
        names = [event["name"] for event in trace["traceEvents"]]
        assert names[0] == "visualize"
        for phase in ("select_top_k",) + PHASE_ORDER:
            assert phase in names
        assert all(event["ph"] == "X" for event in trace["traceEvents"])
        # (b) Prometheus text with pruning + per-level cache counters.
        metrics_text = text[text.index("# HELP"):]
        samples = parse_prometheus_text(metrics_text)
        assert any(
            name == "enumeration_pruned_total" for name, _ in samples
        )
        assert ("cache_hits_total", (("level", "results"),)) in samples

    def test_metrics_to_file(self, csv_path, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        out = io.StringIO()
        code = main(
            [
                "visualize", csv_path, "--k", "1", "--format", "list",
                "--metrics", str(metrics_path),
            ],
            out=out,
        )
        assert code == 0
        samples = parse_prometheus_text(metrics_path.read_text())
        assert samples[
            ("selection_runs_total", (("enumeration", "rules"),))
        ] == 1

    def test_flags_present_on_all_pipeline_commands(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("visualize", "search", "query", "explain", "profile"):
            args = parser.parse_args(
                [command, "x.csv"]
                + (["kw"] if command == "search" else [])
            )
            assert args.trace is None
            assert args.metrics is None
            assert args.jobs == 1
            assert args.backend == "process"
            assert args.no_cache is False

    def test_uninstrumented_run_emits_no_obs_output(self, csv_path):
        out = io.StringIO()
        code = main(["visualize", csv_path, "--k", "1", "--format", "list"], out=out)
        assert code == 0
        assert "# HELP" not in out.getvalue()
        assert "wrote trace" not in out.getvalue()
