"""Tests for the metrics half of the observability layer."""

import math

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    parse_exemplars,
    parse_prometheus_text,
    request_scope,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_set_cumulative_only_moves_forward(self):
        counter = Counter()
        counter.set_cumulative(10)
        counter.set_cumulative(4)  # stale sync: ignored
        assert counter.value == 10
        counter.set_cumulative(12)
        assert counter.value == 12


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4.0


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper_bounds(self):
        hist = Histogram(buckets=(10.0, 20.0, 30.0))
        hist.observe(10.0)  # exactly on a bound -> that bucket
        hist.observe(10.0001)  # just above -> next bucket
        hist.observe(31.0)  # beyond the last bound -> overflow slot
        assert hist.counts == [1, 1, 0, 1]
        assert hist.count == 3
        assert hist.min == 10.0
        assert hist.max == 31.0

    def test_invalid_buckets_rejected(self):
        for bad in ((), (2.0, 1.0), (1.0, 1.0), (1.0, math.inf)):
            with pytest.raises(ValueError):
                Histogram(buckets=bad)

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram(buckets=(10.0, 20.0, 30.0))
        for value in (5.0, 15.0, 25.0):
            hist.observe(value)
        # rank(p50) = 1.5 -> second bucket (10, 20], halfway in: 15.0.
        assert hist.percentile(0.50) == pytest.approx(15.0)
        # rank(p99) = 2.97 -> third bucket interpolates to 29.7, then
        # clamps to the observed max.
        assert hist.percentile(0.99) == pytest.approx(25.0)

    def test_percentile_single_observation_clamps_to_value(self):
        hist = Histogram(buckets=(10.0,))
        hist.observe(5.0)
        assert hist.percentile(0.5) == pytest.approx(5.0)
        assert hist.percentile(0.99) == pytest.approx(5.0)

    def test_percentile_overflow_uses_observed_max(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(100.0)
        assert hist.percentile(0.9) == pytest.approx(100.0)

    def test_percentile_empty_is_nan_and_bad_q_raises(self):
        hist = Histogram(buckets=(1.0,))
        assert math.isnan(hist.percentile(0.5))
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_summary_keys(self):
        hist = Histogram(buckets=(1.0,))
        assert hist.summary() == {"count": 0, "sum": 0.0}
        hist.observe(0.5)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["sum"] == 0.5
        assert set(summary) == {"count", "sum", "min", "max", "p50", "p90", "p99"}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", labels={"level": "results"})
        b = registry.counter("hits_total", labels={"level": "results"})
        c = registry.counter("hits_total", labels={"level": "features"})
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"a": "1", "b": "2"})
        b = registry.counter("x_total", labels={"b": "2", "a": "1"})
        assert a is b

    def test_name_bound_to_first_kind(self):
        registry = MetricsRegistry()
        registry.counter("thing_total")
        with pytest.raises(ValueError):
            registry.gauge("thing_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name")

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()

    def test_reset_drops_families(self):
        registry = MetricsRegistry()
        registry.counter("gone_total").inc()
        registry.reset()
        assert registry.to_prometheus_text() == ""


class TestPrometheusExposition:
    def test_counter_and_gauge_round_trip(self):
        registry = MetricsRegistry()
        registry.counter(
            "requests_total", labels={"mode": "rules"}, help="Requests"
        ).inc(7)
        registry.gauge("queue_depth").set(3.5)
        text = registry.to_prometheus_text()
        assert "# HELP requests_total Requests" in text
        assert "# TYPE requests_total counter" in text
        samples = parse_prometheus_text(text)
        assert samples[("requests_total", (("mode", "rules"),))] == 7
        assert samples[("queue_depth", ())] == 3.5

    def test_histogram_exposition_is_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        samples = parse_prometheus_text(registry.to_prometheus_text())
        assert samples[("lat_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("lat_seconds_bucket", (("le", "1"),))] == 2
        assert samples[("lat_seconds_bucket", (("le", "+Inf"),))] == 3
        assert samples[("lat_seconds_count", ())] == 3
        assert samples[("lat_seconds_sum", ())] == pytest.approx(5.55)

    def test_label_values_escape_and_round_trip(self):
        registry = MetricsRegistry()
        tricky = 'a"b\\c\nd'
        registry.counter("esc_total", labels={"v": tricky}).inc()
        text = registry.to_prometheus_text()
        assert "\n" not in text.split("esc_total", 2)[2].split("\n")[0]
        samples = parse_prometheus_text(text)
        assert samples[("esc_total", (("v", tricky),))] == 1

    def test_to_json_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"k": "v"}).inc(2)
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        payload = registry.to_json()
        assert payload["c_total"]["type"] == "counter"
        assert payload["c_total"]["series"][0] == {
            "labels": {"k": "v"},
            "value": 2.0,
        }
        assert payload["h_seconds"]["series"][0]["count"] == 1

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("{not metrics}")


class TestExporterEdgeCases:
    """Prometheus exposition corners: escaping and degenerate histograms."""

    @pytest.mark.parametrize(
        "tricky",
        [
            "back\\slash",
            'quo"te',
            "new\nline",
            "\\n",  # literal backslash-n, not a newline
            "trailing\\",
            'all\\three"\nat once',
        ],
    )
    def test_each_escape_class_round_trips(self, tricky):
        registry = MetricsRegistry()
        registry.counter("edge_total", labels={"v": tricky}).inc()
        text = registry.to_prometheus_text()
        samples = parse_prometheus_text(text)
        assert samples[("edge_total", (("v", tricky),))] == 1

    def test_escaped_sample_stays_on_one_line(self):
        registry = MetricsRegistry()
        registry.counter("line_total", labels={"v": "a\nb\nc"}).inc()
        sample_lines = [
            line
            for line in registry.to_prometheus_text().splitlines()
            if line.startswith("line_total")
        ]
        assert len(sample_lines) == 1

    def test_single_bucket_percentiles_stay_in_observed_range(self):
        hist = Histogram(buckets=(10.0,))
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        estimates = [hist.percentile(q) for q in (0.0, 0.25, 0.5, 0.9, 1.0)]
        assert all(2.0 <= e <= 6.0 for e in estimates)
        assert estimates == sorted(estimates)

    def test_single_bucket_overflow_reports_observed_max(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(50.0)
        assert hist.percentile(0.5) == 50.0
        assert hist.summary()["p99"] == 50.0

    def test_empty_histogram_exports_without_samples_breaking_parse(self):
        registry = MetricsRegistry()
        registry.histogram("idle_seconds", buckets=(1.0,))
        samples = parse_prometheus_text(registry.to_prometheus_text())
        assert samples[("idle_seconds_count", ())] == 0
        assert samples[("idle_seconds_bucket", (("le", "+Inf"),))] == 0


class TestPercentileBucketBoundaries:
    """Interpolation at the first and last finite bucket edges."""

    def test_first_bucket_lower_edge_clamps_to_observed_min(self):
        # All mass in the first bucket: the interpolation's lower edge
        # is min(observed min, bucket bound), never a phantom zero.
        hist = Histogram(buckets=(10.0, 20.0))
        for value in (8.0, 9.0, 10.0):
            hist.observe(value)
        assert hist.percentile(0.0) == pytest.approx(8.0)
        low = hist.percentile(0.01)
        assert 8.0 <= low <= 10.0
        assert hist.percentile(1.0) == pytest.approx(10.0)

    def test_first_bucket_with_min_above_its_bound_stays_clamped(self):
        # min lands above the first bound (possible only when the first
        # bucket is empty): estimates still never fall below min.
        hist = Histogram(buckets=(10.0, 20.0))
        for value in (12.0, 14.0, 16.0):
            hist.observe(value)
        for q in (0.0, 0.3, 0.6, 1.0):
            assert 12.0 <= hist.percentile(q) <= 16.0

    def test_last_finite_bucket_upper_edge_clamps_to_observed_max(self):
        # All mass in the last finite bucket: q=1.0 reports the
        # observed max, not the bucket's upper bound.
        hist = Histogram(buckets=(10.0, 20.0))
        for value in (11.0, 12.0, 13.0):
            hist.observe(value)
        assert hist.percentile(1.0) == pytest.approx(13.0)
        assert hist.percentile(0.5) <= 13.0

    def test_quantile_spanning_into_overflow_uses_max(self):
        hist = Histogram(buckets=(10.0,))
        hist.observe(5.0)
        hist.observe(100.0)
        assert hist.percentile(1.0) == pytest.approx(100.0)
        assert hist.percentile(0.25) <= 10.0

    def test_estimates_are_monotone_across_the_boundary(self):
        hist = Histogram(buckets=(10.0, 20.0, 30.0))
        for value in (9.0, 10.0, 10.5, 19.0, 20.0, 25.0, 40.0):
            hist.observe(value)
        quantiles = [i / 20 for i in range(21)]
        estimates = [hist.percentile(q) for q in quantiles]
        assert estimates == sorted(estimates)
        assert estimates[0] >= 9.0
        assert estimates[-1] == pytest.approx(40.0)


class TestExemplars:
    def test_counter_line_carries_the_last_exemplar(self):
        registry = MetricsRegistry()
        with request_scope() as context:
            registry.counter("runs_total", labels={"mode": "rules"}).inc()
        text = registry.to_prometheus_text()
        (line,) = [
            l for l in text.splitlines() if l.startswith("runs_total")
        ]
        assert f'# {{request_id="{context.request_id}"}}' in line

    def test_histogram_exemplars_attach_per_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        with request_scope() as fast:
            hist.observe(0.05)
        with request_scope() as slow:
            hist.observe(5.0)
        exemplars = parse_exemplars(registry.to_prometheus_text())
        by_le = {
            e["labels"]["le"]: e for e in exemplars
            if e["name"] == "lat_seconds_bucket"
        }
        assert by_le["0.1"]["request_id"] == fast.request_id
        assert by_le["0.1"]["value"] == pytest.approx(0.05)
        assert by_le["+Inf"]["request_id"] == slow.request_id
        assert by_le["+Inf"]["value"] == pytest.approx(5.0)

    def test_round_trip_with_exemplars_preserves_samples(self):
        # The exemplar tail must be invisible to the value parser.
        registry = MetricsRegistry()
        with request_scope():
            registry.counter("a_total", labels={"k": "v"}).inc(3)
            registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        registry.gauge("g").set(2.5)
        text = registry.to_prometheus_text()
        samples = parse_prometheus_text(text)
        assert samples[("a_total", (("k", "v"),))] == 3
        assert samples[("h_seconds_bucket", (("le", "1"),))] == 1
        assert samples[("h_seconds_count", ())] == 1
        assert samples[("g", ())] == 2.5

    def test_no_scope_means_no_exemplars(self):
        registry = MetricsRegistry()
        registry.counter("plain_total").inc()
        registry.histogram("plain_seconds", buckets=(1.0,)).observe(0.5)
        text = registry.to_prometheus_text()
        assert "#" not in text.replace("# HELP", "").replace("# TYPE", "")
        assert parse_exemplars(text) == []

    def test_exemplar_timestamps_parse(self):
        registry = MetricsRegistry()
        with request_scope():
            registry.counter("t_total").inc()
        (exemplar,) = parse_exemplars(registry.to_prometheus_text())
        assert exemplar["ts"] > 0

    def test_gauges_never_carry_exemplars(self):
        registry = MetricsRegistry()
        with request_scope():
            registry.gauge("depth").set(4)
        assert parse_exemplars(registry.to_prometheus_text()) == []

    def test_tricky_label_values_with_exemplar_tail(self):
        registry = MetricsRegistry()
        tricky = 'a"b\\c'
        with request_scope() as context:
            registry.counter("esc2_total", labels={"v": tricky}).inc()
        text = registry.to_prometheus_text()
        samples = parse_prometheus_text(text)
        assert samples[("esc2_total", (("v", tricky),))] == 1
        (exemplar,) = parse_exemplars(text)
        assert exemplar["request_id"] == context.request_id
