"""Tests for the sampling wall-clock profiler."""

import json
import threading
import time

import pytest

from repro.obs import SamplingProfiler, Tracer, active_profiler


def _spin(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(200))


class TestSampling:
    def test_samples_the_main_thread_stack(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _spin(0.15)
        assert profiler.sample_count > 10
        stacks = profiler.stacks()
        assert stacks
        assert any(
            any(frame.endswith(":_spin") for frame in stack)
            for stack in stacks
        )
        # Its own frames (module label "profiler") never appear.
        for stack in stacks:
            assert not any(
                frame.startswith("profiler:") for frame in stack
            )

    def test_signal_mode_samples_without_sweeping_main(self):
        profiler = SamplingProfiler(interval=0.001, use_signal=True)
        with profiler:
            _spin(0.1)
        assert profiler.signal_samples > 0

    def test_sweep_only_mode_still_samples_main(self):
        profiler = SamplingProfiler(interval=0.001, use_signal=False)
        with profiler:
            _spin(0.15)
        assert profiler.signal_samples == 0
        assert profiler.sweep_samples > 0
        assert profiler.sample_count > 0

    def test_worker_threads_are_swept(self):
        stop = threading.Event()

        def busy_worker():
            while not stop.is_set():
                sum(range(200))

        worker = threading.Thread(target=busy_worker, name="busy")
        worker.start()
        try:
            with SamplingProfiler(interval=0.001) as profiler:
                time.sleep(0.15)
        finally:
            stop.set()
            worker.join()
        assert any(
            any(frame.endswith(":busy_worker") for frame in stack)
            for stack in profiler.stacks()
        )

    def test_span_attribution_prefixes_open_spans(self):
        tracer = Tracer()
        profiler = SamplingProfiler(interval=0.001, tracer=tracer)
        with profiler:
            with tracer.span("select_top_k"):
                with tracer.span("enumerate"):
                    _spin(0.15)
        prefixed = [
            stack for stack in profiler.stacks()
            if stack[:2] == ("select_top_k", "enumerate")
        ]
        assert prefixed


class TestLifecycle:
    def test_one_profiler_per_process(self):
        first = SamplingProfiler(interval=0.01).start()
        try:
            assert active_profiler() is first
            with pytest.raises(RuntimeError):
                SamplingProfiler(interval=0.01).start()
            with pytest.raises(RuntimeError):
                first.start()
        finally:
            first.stop()
        assert active_profiler() is None

    def test_stop_is_idempotent_and_accumulates_wall_time(self):
        profiler = SamplingProfiler(interval=0.01)
        profiler.start()
        time.sleep(0.02)
        profiler.stop()
        wall = profiler.wall_seconds
        assert wall > 0
        profiler.stop()
        assert profiler.wall_seconds == wall

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_signal_handler_is_restored(self):
        import signal

        before = signal.getsignal(signal.SIGALRM)
        with SamplingProfiler(interval=0.01, use_signal=True):
            assert signal.getsignal(signal.SIGALRM) != before
        assert signal.getsignal(signal.SIGALRM) == before


class TestExport:
    def _profiled(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            _spin(0.1)
        return profiler

    def test_collapsed_format(self):
        profiler = self._profiled()
        text = profiler.collapsed()
        assert text.endswith("\n")
        lines = text.strip().split("\n")
        counts = []
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack
            counts.append(int(count))
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == profiler.sample_count

    def test_empty_profiler_collapses_to_empty_string(self):
        assert SamplingProfiler().collapsed() == ""

    def test_speedscope_document(self):
        profiler = self._profiled()
        doc = profiler.to_speedscope(name="unit test")
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        frames = doc["shared"]["frames"]
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "seconds"
        assert len(profile["samples"]) == len(profile["weights"])
        for sample in profile["samples"]:
            for index in sample:
                assert 0 <= index < len(frames)
        assert sum(profile["weights"]) == pytest.approx(
            profiler.sample_count * profiler.interval
        )
        assert profile["endValue"] == pytest.approx(sum(profile["weights"]))

    def test_write_files_round_trip(self, tmp_path):
        profiler = self._profiled()
        collapsed_path = tmp_path / "prof.collapsed"
        speedscope_path = tmp_path / "prof.speedscope.json"
        profiler.write_collapsed(collapsed_path)
        profiler.write_speedscope(speedscope_path)
        assert collapsed_path.read_text() == profiler.collapsed()
        doc = json.loads(speedscope_path.read_text())
        assert doc["profiles"][0]["samples"]

    def test_summary_accounting(self):
        profiler = self._profiled()
        summary = profiler.summary()
        assert summary["samples"] == profiler.sample_count
        assert (
            summary["signal_samples"] + summary["sweep_samples"]
            >= summary["samples"] - summary["sweep_samples"]
        )
        assert summary["distinct_stacks"] == len(profiler.stacks())
        assert summary["wall_seconds"] > 0


class TestCliProfile:
    def test_profile_flag_writes_both_outputs(
        self, flights_table, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.dataset import write_csv

        csv_path = str(tmp_path / "t.csv")
        write_csv(flights_table, csv_path)
        profile_path = str(tmp_path / "prof.collapsed")
        assert main([
            "visualize", csv_path, "--k", "2", "--format", "list",
            "--profile", profile_path,
            "--profile-interval", "0.001",
        ]) == 0
        out = capsys.readouterr().out
        assert "# wrote profile to" in out
        collapsed = (tmp_path / "prof.collapsed").read_text()
        doc = json.loads(
            (tmp_path / "prof.collapsed.speedscope.json").read_text()
        )
        assert doc["profiles"][0]["weights"]
        # Span attribution: stacks group under the CLI command span.
        assert collapsed.startswith("visualize")
