"""Decision provenance: per-chart records, byte-identity, reconciliation."""

import json

import pytest

from repro.core import DeepEye, select_top_k
from repro.core.explain import provenance_report
from repro.engine import MultiLevelCache
from repro.engine.parallel import SlowTableLog
from repro.obs import ChartProvenance, EventLog, aggregate_events, node_id
from repro.obs.provenance import render_provenance


def _keys(result):
    return [n.key() for n in result.nodes]


class TestProvenanceRecords:
    def test_every_emitted_chart_has_a_record(self, flights_table):
        result = select_top_k(flights_table, k=5, provenance=True)
        assert set(result.provenance) == {node_id(n) for n in result.nodes}
        for position, node in enumerate(result.nodes, start=1):
            record = result.provenance[node_id(node)]
            assert record.rank == position
            assert record.description == node.describe()

    def test_records_reconcile_with_pruning(self, flights_table):
        result = select_top_k(flights_table, k=5, provenance=True)
        for record in result.provenance.values():
            assert record.considered == record.emitted + sum(
                record.siblings_pruned.values()
            )
            assert record.emitted == result.candidates

    def test_partial_order_records_carry_factors_and_dominance(
        self, flights_table
    ):
        result = select_top_k(flights_table, k=5, provenance=True)
        records = sorted(result.provenance.values(), key=lambda r: r.rank)
        for record in records:
            assert record.m is not None and 0.0 <= record.m <= 1.0
            assert record.q is not None and record.w is not None
            assert record.score is not None
            assert record.dominates >= 0 and record.dominated_by >= 0
        # The emitted set is ordered by the weight-aware score.
        assert records[0].score >= records[-1].score

    def test_record_serialises_and_summarises(self, flights_table):
        result = select_top_k(flights_table, k=3, provenance=True)
        record = next(iter(result.provenance.values()))
        payload = record.to_dict()
        json.dumps(payload)
        assert payload["node_id"] == record.node_id
        text = record.summary()
        assert f"#{record.rank}:" in text
        assert "factors:" in text

    def test_disabled_by_default(self, flights_table):
        result = select_top_k(flights_table, k=3)
        assert result.provenance == {}

    def test_report_rendering(self, flights_table):
        result = select_top_k(flights_table, k=3, provenance=True)
        report = provenance_report(result)
        assert report.startswith("#1:")
        plain = select_top_k(flights_table, k=3)
        assert provenance_report(plain) == ""
        assert render_provenance([]) == ""


class TestByteIdentity:
    """Instrumentation must be a pure observer of the top-k."""

    def test_events_and_provenance_do_not_change_topk(self, flights_table):
        plain = select_top_k(flights_table, k=5)
        log = EventLog()
        instrumented = select_top_k(
            flights_table, k=5, events=log, provenance=True
        )
        assert _keys(plain) == _keys(instrumented)
        assert plain.order == instrumented.order
        assert len(log) > 0

    def test_parallel_run_identical_with_events(self, flights_table):
        plain = select_top_k(flights_table, k=5, n_jobs=2)
        log = EventLog()
        instrumented = select_top_k(flights_table, k=5, n_jobs=2, events=log)
        assert _keys(plain) == _keys(instrumented)
        # Per-worker enumerate_task events merge in input order, so two
        # runs agree regardless of worker scheduling.
        def task_columns(event_log):
            return [
                e["column"] for e in event_log.by_kind("phase")
                if e.get("phase") == "enumerate_task"
            ]

        assert task_columns(log)
        repeat = EventLog()
        select_top_k(flights_table, k=5, n_jobs=2, events=repeat)
        assert task_columns(log) == task_columns(repeat)

    def test_warm_cache_identical_with_events(self, flights_table):
        cache = MultiLevelCache()
        cold = select_top_k(flights_table, k=4, cache=cache, events=EventLog())
        log = EventLog()
        warm = select_top_k(flights_table, k=4, cache=cache, events=log)
        assert _keys(cold) == _keys(warm)
        hits = [
            e for e in log.by_kind("cache") if e.get("result_cache_hit")
        ]
        assert len(hits) == 1

    def test_cache_key_separates_provenance(self, flights_table):
        cache = MultiLevelCache()
        plain = select_top_k(flights_table, k=3, cache=cache)
        assert plain.provenance == {}
        with_records = select_top_k(
            flights_table, k=3, cache=cache, provenance=True
        )
        assert with_records.provenance  # not served the record-less hit
        warm = select_top_k(flights_table, k=3, cache=cache, provenance=True)
        assert set(warm.provenance) == set(with_records.provenance)
        assert _keys(plain) == _keys(with_records) == _keys(warm)


class TestEventStream:
    def test_selection_emits_full_decision_record(self, flights_table):
        log = EventLog()
        result = select_top_k(flights_table, k=4, events=log)
        (request,) = log.by_kind("request")
        assert request["table"] == "flights"
        assert request["k"] == 4
        phases = {e["phase"] for e in log.by_kind("phase")}
        assert {"enumerate", "recognize", "rank"} <= phases
        scores = log.by_kind("score")
        assert len(scores) == len(result.nodes)
        assert [e["rank"] for e in scores] == list(range(1, len(scores) + 1))
        (rank_event,) = log.by_kind("rank")
        assert rank_event["chart_ids"] == [node_id(n) for n in result.nodes]

    def test_event_log_reconciles_considered_vs_pruned(self, flights_table):
        log = EventLog()
        select_top_k(flights_table, k=4, events=log)
        summary = aggregate_events(list(log))
        entry = summary["tables"]["flights"]
        assert entry["considered"] > 0
        assert entry["considered"] == entry["emitted"] + entry["pruned"]

    def test_error_event_on_failure(self, flights_table):
        log = EventLog()
        with pytest.raises(Exception):
            select_top_k(flights_table, k=3, ranker="no_such_ranker",
                         events=log)
        errors = log.by_kind("error")
        assert errors and "no_such_ranker" in errors[0]["error"]


class TestSlowTableLog:
    def test_bounded_and_newest_first(self):
        log = SlowTableLog(maxlen=2)
        log.append({"table": "a"})
        log.append({"table": "b"})
        log.append({"table": "c"})
        assert len(log) == 2
        assert [entry["table"] for entry in log] == ["c", "b"]
        assert log[0]["table"] == "c"
        log.clear()
        assert len(log) == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            SlowTableLog(maxlen=0)


class TestPipelineIntegration:
    def test_engine_level_events_and_provenance(self, flights_table):
        log = EventLog()
        engine = DeepEye(ranking="partial_order", recognizer_model=None,
                         events=log, provenance=True)
        result = engine.top_k(flights_table, k=3)
        assert result.provenance
        assert log.by_kind("request")

    def test_per_call_provenance_override(self, flights_table):
        engine = DeepEye(ranking="partial_order", recognizer_model=None,
                         provenance=True)
        assert engine.top_k(flights_table, k=3).provenance
        # The per-call override wins over the constructor default (and an
        # engine without an event log really runs record-free).
        plain = engine.top_k(flights_table, k=3, provenance=False)
        assert plain.provenance == {}

    def test_slow_table_cap_is_configurable(self, flights_table):
        engine = DeepEye(ranking="partial_order", recognizer_model=None,
                         max_slow_tables=1)
        assert engine.slow_tables._entries.maxlen == 1

    def test_batch_merges_worker_events_in_input_order(self, tiny_table,
                                                       flights_table):
        log = EventLog()
        engine = DeepEye(ranking="partial_order", recognizer_model=None,
                         events=log)
        tables = [tiny_table, flights_table]
        results = list(engine.top_k_batch(tables, k=2, n_jobs=2))
        assert len(results) == 2
        batch_events = [
            e for e in log.by_kind("phase")
            if e.get("phase") == "batch_table"
        ]
        assert [e["table"] for e in batch_events] == ["tiny", "flights"]
        requests = [e["table"] for e in log.by_kind("request")]
        assert requests == ["tiny", "flights"]
