"""Tests for the tracing half of the observability layer."""

import json
import threading
import time

import pytest

from repro.obs import Span, Tracer, maybe_span


class TestSpanNesting:
    def test_child_spans_nest_under_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert [s.name for s in tracer.spans] == ["root"]
        root = tracer.spans[0]
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]

    def test_sequential_roots_are_separate(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.spans] == ["first", "second"]

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_find_walks_the_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("deep"):
                pass
        assert tracer.find("deep").name == "deep"
        assert tracer.find("missing") is None


class TestSpanTiming:
    def test_timing_is_monotone_and_contained(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                time.sleep(0.002)
        root = tracer.spans[0]
        child = root.children[0]
        assert root.end >= root.start
        assert child.duration >= 0.002
        # The child's interval sits inside the parent's.
        assert child.start >= root.start
        assert child.end <= root.end
        assert root.duration >= child.duration

    def test_open_span_has_zero_duration(self):
        span = Span("open", start=1.0, thread_id=0)
        assert span.end is None
        assert span.duration == 0.0

    def test_exception_still_closes_and_records_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert len(tracer.spans) == 1
        assert tracer.spans[0].end is not None


class TestSpanData:
    def test_attributes_and_counters(self):
        tracer = Tracer()
        with tracer.span("work", table="flights") as span:
            span.set("k", 5)
            span.add("candidates", 10)
            span.add("candidates", 2)
        span = tracer.spans[0]
        assert span.attributes == {"table": "flights", "k": 5}
        assert span.counters == {"candidates": 12.0}

    def test_to_dict_is_json_serialisable(self):
        tracer = Tracer()
        with tracer.span("root", obj=object()) as span:
            span.add("n", 1)
            with tracer.span("child"):
                pass
        payload = json.loads(tracer.to_json())
        (root,) = payload["spans"]
        assert root["name"] == "root"
        assert isinstance(root["attributes"]["obj"], str)  # coerced
        assert root["children"][0]["name"] == "child"


class TestChromeExport:
    def test_chrome_trace_structure(self):
        tracer = Tracer()
        with tracer.span("root", table="t") as span:
            span.add("candidates", 3)
            with tracer.span("child"):
                time.sleep(0.001)
        trace = tracer.to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == ["root", "child"]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        root_event = events[0]
        assert root_event["args"]["table"] == "t"
        assert root_event["args"]["candidates"] == 3.0
        # Child interval contained in root, in microseconds.
        child = events[1]
        assert child["ts"] >= root_event["ts"]
        assert child["ts"] + child["dur"] <= root_event["ts"] + root_event["dur"] + 1

    def test_write_chrome_trace_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"][0]["name"] == "only"


class TestThreads:
    def test_worker_thread_spans_become_own_roots(self):
        tracer = Tracer()

        def work():
            with tracer.span("worker"):
                pass

        with tracer.span("main"):
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        names = sorted(s.name for s in tracer.spans)
        assert names == ["main", "worker"]
        by_name = {s.name: s for s in tracer.spans}
        # The worker span is not a child of main and carries its own tid.
        assert by_name["main"].children == []
        assert by_name["worker"].thread_id != by_name["main"].thread_id


class TestMaybeSpanAndClear:
    def test_maybe_span_without_tracer_yields_none(self):
        with maybe_span(None, "anything", k=1) as span:
            assert span is None

    def test_maybe_span_with_tracer_records(self):
        tracer = Tracer()
        with maybe_span(tracer, "real", k=1) as span:
            assert span is not None
        assert tracer.find("real").attributes == {"k": 1}

    def test_clear_drops_finished_spans(self):
        tracer = Tracer()
        with tracer.span("gone"):
            pass
        tracer.clear()
        assert tracer.spans == []


class TestAdoptedWorkerTids:
    """Spans adopted from pool workers render on their own synthetic
    Chrome rows instead of interleaving with the parent's threads."""

    def _worker_trace(self, name):
        tracer = Tracer()
        with tracer.span(name):
            with tracer.span(f"{name}-child"):
                pass
        return tracer

    def test_each_worker_gets_a_distinct_synthetic_tid(self):
        parent = Tracer()
        with parent.span("batch"):
            pass
        for label in ("pid-100", "pid-200"):
            worker = self._worker_trace(f"task-{label}")
            parent.adopt(worker.spans, worker.epoch_unix, worker=label)
        trace = parent.to_chrome_trace()
        events = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
        tid_a = events["task-pid-100"]["tid"]
        tid_b = events["task-pid-200"]["tid"]
        assert tid_a != tid_b
        # Synthetic tids sit in a narrow band above the base, one per
        # distinct worker label.
        assert {tid_a, tid_b} == {1_000_000, 1_000_001}
        # Parent spans keep their real thread id, outside that band.
        assert events["batch"]["tid"] not in {tid_a, tid_b}
        # Children ride on their root's synthetic row.
        assert events["task-pid-100-child"]["tid"] == tid_a
        assert events["task-pid-200-child"]["tid"] == tid_b

    def test_synthetic_tids_are_stable_across_exports(self):
        parent = Tracer()
        for label in ("pid-7", "pid-8", "pid-7"):
            worker = self._worker_trace(f"t-{label}")
            parent.adopt(worker.spans, worker.epoch_unix, worker=label)
        first = parent.to_chrome_trace()
        second = parent.to_chrome_trace()
        tids = lambda t: [
            e["tid"] for e in t["traceEvents"] if e["ph"] == "X"
        ]
        assert tids(first) == tids(second)
        # Both spans from the same worker share one row.
        by_name = {
            e["name"]: e["tid"] for e in first["traceEvents"]
            if e["ph"] == "X"
        }
        assert by_name["t-pid-7"] == sorted(
            tid for name, tid in by_name.items() if name == "t-pid-7"
        )[0]

    def test_thread_name_metadata_labels_worker_rows(self):
        parent = Tracer()
        worker = self._worker_trace("task")
        parent.adopt(worker.spans, worker.epoch_unix, worker="pid-42")
        trace = parent.to_chrome_trace()
        meta = [
            e for e in trace["traceEvents"] if e["ph"] == "M"
            and e["name"] == "thread_name"
        ]
        assert any(
            e["args"]["name"] == "worker pid-42" and e["tid"] == 1_000_000
            for e in meta
        )
        assert "epochUnix" in trace

    def test_adopt_rebases_worker_offsets_onto_parent_epoch(self):
        parent = Tracer()
        worker = Tracer()
        # Simulate a worker whose perf_counter epoch started 5 wall
        # seconds after the parent's.
        with worker.span("late"):
            pass
        parent.adopt(worker.spans, parent.epoch_unix + 5.0)
        (span,) = parent.spans
        assert span.start >= 5.0
