"""Round-trip tests for model serialization."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GaussianNaiveBayes,
    LambdaMART,
    LinearSVM,
    RankingDataset,
    StandardScaler,
)
from repro.persistence import (
    from_dict,
    load_model,
    load_recognizer,
    save_model,
    save_recognizer,
    to_dict,
)


@pytest.fixture
def classification_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(150, 4))
    y = (X[:, 0] + X[:, 1] ** 2 > 0.5).astype(int)
    return X, y


class TestModelRoundTrips:
    def test_tree_classifier(self, classification_data):
        X, y = classification_data
        model = DecisionTreeClassifier(max_depth=6).fit(X, y)
        clone = from_dict(to_dict(model))
        assert np.array_equal(clone.predict(X), model.predict(X))
        assert np.allclose(clone.predict_proba(X), model.predict_proba(X))

    def test_tree_regressor(self, classification_data):
        X, y = classification_data
        model = DecisionTreeRegressor(max_depth=5).fit(X, y.astype(float))
        clone = from_dict(to_dict(model))
        assert np.allclose(clone.predict(X), model.predict(X))

    def test_bayes(self, classification_data):
        X, y = classification_data
        model = GaussianNaiveBayes().fit(X, y)
        clone = from_dict(to_dict(model))
        assert np.array_equal(clone.predict(X), model.predict(X))
        assert np.allclose(clone.predict_proba(X), model.predict_proba(X))

    def test_svm(self, classification_data):
        X, y = classification_data
        model = LinearSVM(epochs=5).fit(X, y)
        clone = from_dict(to_dict(model))
        assert np.array_equal(clone.predict(X), model.predict(X))
        assert np.allclose(clone.decision_function(X), model.decision_function(X))

    def test_lambdamart(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 3))
        relevance = np.clip(np.round(2 + X[:, 0]), 0, 4)
        data = RankingDataset(X, relevance, np.repeat(np.arange(6), 10))
        model = LambdaMART(n_estimators=8).fit(data)
        clone = from_dict(to_dict(model))
        assert np.allclose(clone.predict(X), model.predict(X))

    def test_scaler(self, classification_data):
        X, _ = classification_data
        model = StandardScaler().fit(X)
        clone = from_dict(to_dict(model))
        assert np.allclose(clone.transform(X), model.transform(X))

    def test_json_file_roundtrip(self, classification_data, tmp_path):
        X, y = classification_data
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        path = tmp_path / "model.json"
        save_model(model, path)
        clone = load_model(path)
        assert np.array_equal(clone.predict(X), model.predict(X))
        # The file is actual JSON, not pickle.
        assert path.read_text().startswith("{")

    def test_string_labels_roundtrip(self, classification_data):
        X, y = classification_data
        labels = np.where(y == 1, "good", "bad")
        model = DecisionTreeClassifier(max_depth=4).fit(X, labels)
        clone = from_dict(to_dict(model))
        assert np.array_equal(clone.predict(X), model.predict(X))

    def test_unknown_types_rejected(self):
        with pytest.raises(ReproError):
            to_dict(object())
        with pytest.raises(ReproError):
            from_dict({"kind": "mystery"})


class TestPipelinePersistence:
    @pytest.fixture
    def trained_recognizer(self, flights_table):
        from repro.core import VisualizationRecognizer, enumerate_rule_based
        from repro.core.partial_order import matching_quality_raw

        nodes = enumerate_rule_based(flights_table)
        labels = [matching_quality_raw(n) > 0 for n in nodes]
        return VisualizationRecognizer().fit(nodes, labels), nodes

    def test_recognizer_roundtrip(self, trained_recognizer, tmp_path):
        recognizer, nodes = trained_recognizer
        path = tmp_path / "recognizer.json"
        save_recognizer(recognizer, path)
        clone = load_recognizer(path)
        assert np.array_equal(clone.predict(nodes), recognizer.predict(nodes))

    def test_svm_recognizer_roundtrip_with_scaler(self, flights_table, tmp_path):
        from repro.core import VisualizationRecognizer, enumerate_rule_based
        from repro.core.partial_order import matching_quality_raw

        nodes = enumerate_rule_based(flights_table)
        labels = [matching_quality_raw(n) > 0 for n in nodes]
        recognizer = VisualizationRecognizer(model="svm").fit(nodes, labels)
        path = tmp_path / "svm.json"
        save_recognizer(recognizer, path)
        clone = load_recognizer(path)
        assert np.array_equal(clone.predict(nodes), recognizer.predict(nodes))

    def test_ltr_roundtrip(self, flights_table, tmp_path):
        from repro.core import LearningToRankRanker, enumerate_rule_based
        from repro.core.partial_order import matching_quality_raw
        from repro.persistence import load_ltr, save_ltr

        nodes = enumerate_rule_based(flights_table)
        relevance = [4 * matching_quality_raw(n) for n in nodes]
        ranker = LearningToRankRanker(n_estimators=5).fit([(nodes, relevance)])
        path = tmp_path / "ltr.json"
        save_ltr(ranker, path)
        clone = load_ltr(path)
        assert clone.rank(nodes) == ranker.rank(nodes)

    def test_unfitted_rejected(self):
        from repro.core import VisualizationRecognizer
        from repro.persistence import recognizer_to_dict

        with pytest.raises(ReproError):
            recognizer_to_dict(VisualizationRecognizer())
