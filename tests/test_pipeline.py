"""Integration tests for the DeepEye facade (train once, select anywhere)."""

import pytest

from repro.core import DeepEye, TrainingExample, enumerate_rule_based
from repro.core.partial_order import matching_quality_raw
from repro.corpus import CorpusConfig, PerceptionOracle, build_corpus, build_training_examples, make_table
from repro.errors import ModelError, SelectionError


@pytest.fixture(scope="module")
def training_examples():
    tables = [
        make_table("Monthly Sales", scale=0.12),
        make_table("City Weather", scale=0.06),
        make_table("Exam Scores", scale=0.1),
    ]
    corpus = build_corpus(
        tables, PerceptionOracle(), CorpusConfig(max_nodes_per_table=80)
    )
    return build_training_examples(corpus)


@pytest.fixture(scope="module")
def target_table():
    return make_table("Taxi Trips", scale=0.02)


class TestPartialOrderMode:
    def test_works_without_training(self, target_table):
        engine = DeepEye(ranking="partial_order", recognizer_model=None)
        result = engine.top_k(target_table, k=4)
        assert len(result.nodes) == 4
        for node in result.nodes:
            assert matching_quality_raw(node) > 0

    def test_with_trained_recognizer(self, training_examples, target_table):
        engine = DeepEye(ranking="partial_order").train(training_examples)
        result = engine.top_k(target_table, k=4)
        assert len(result.nodes) == 4


class TestLearnedModes:
    def test_ltr_requires_training(self, target_table):
        engine = DeepEye(ranking="learning_to_rank")
        with pytest.raises(ModelError):
            engine.top_k(target_table)

    def test_ltr_after_training(self, training_examples, target_table):
        engine = DeepEye(ranking="learning_to_rank").train(training_examples)
        result = engine.top_k(target_table, k=5)
        assert len(result.nodes) == 5
        assert result.candidates >= result.valid >= 5

    def test_hybrid_after_training(self, training_examples, target_table):
        engine = DeepEye(ranking="hybrid").train(training_examples)
        result = engine.top_k(target_table, k=5)
        assert len(result.nodes) == 5
        assert set(result.timings) == {"enumerate", "recognize", "rank"}
        assert engine.hybrid is not None
        assert engine.hybrid.alpha >= 0

    def test_train_empty_rejected(self):
        with pytest.raises(ModelError):
            DeepEye().train([])

    def test_unknown_ranking_rejected(self):
        with pytest.raises(SelectionError):
            DeepEye(ranking="sorcery")


class TestTrainingExample:
    def test_alignment_validated(self, target_table):
        nodes = enumerate_rule_based(target_table)[:3]
        with pytest.raises(ModelError):
            TrainingExample("t", nodes, [True], [1.0, 0.0, 0.0])

    def test_good_nodes(self, target_table):
        nodes = enumerate_rule_based(target_table)[:3]
        example = TrainingExample(
            "t", nodes, [True, False, True], [2.0, 0.0, 1.0]
        )
        assert example.good_nodes() == [nodes[0], nodes[2]]
