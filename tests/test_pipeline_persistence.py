"""Integration tests: DeepEye engine save / load round trips."""

import pytest

from repro.core import DeepEye
from repro.corpus import (
    CorpusConfig,
    PerceptionOracle,
    build_corpus,
    build_training_examples,
    make_table,
)
from repro.errors import ModelError


@pytest.fixture(scope="module")
def examples():
    tables = [
        make_table("Monthly Sales", scale=0.08),
        make_table("City Weather", scale=0.04),
        make_table("Exam Scores", scale=0.08),
    ]
    corpus = build_corpus(
        tables, PerceptionOracle(), CorpusConfig(max_nodes_per_table=60)
    )
    return build_training_examples(corpus)


@pytest.fixture(scope="module")
def target():
    return make_table("Taxi Trips", scale=0.015)


class TestEngineSaveLoad:
    @pytest.mark.parametrize("ranking", ["hybrid", "learning_to_rank", "partial_order"])
    def test_roundtrip_preserves_top_k(self, examples, target, ranking, tmp_path):
        engine = DeepEye(ranking=ranking).train(examples)
        directory = tmp_path / ranking
        engine.save(directory)
        restored = DeepEye.load(directory)
        original = [n.key() for n in engine.top_k(target, k=4).nodes]
        reloaded = [n.key() for n in restored.top_k(target, k=4).nodes]
        assert original == reloaded

    def test_alpha_zero_survives_roundtrip(self, examples, target, tmp_path):
        engine = DeepEye(ranking="hybrid").train(examples)
        engine.hybrid.alpha = 0.0  # a legitimate learned value
        engine.save(tmp_path / "zero")
        restored = DeepEye.load(tmp_path / "zero")
        assert restored.hybrid.alpha == 0.0

    def test_saved_files_are_json(self, examples, tmp_path):
        engine = DeepEye(ranking="hybrid").train(examples)
        engine.save(tmp_path / "engine")
        for name in ("engine.json", "recognizer.json", "ltr.json"):
            path = tmp_path / "engine" / name
            assert path.exists()
            assert path.read_text().startswith("{")

    def test_untrained_engine_cannot_save(self, tmp_path):
        with pytest.raises(ModelError):
            DeepEye().save(tmp_path / "nope")

    def test_config_preserved(self, examples, tmp_path):
        engine = DeepEye(
            ranking="learning_to_rank", enumeration="exhaustive",
            graph_strategy="naive",
        ).train(examples)
        engine.save(tmp_path / "cfg")
        restored = DeepEye.load(tmp_path / "cfg")
        assert restored.enumeration == "exhaustive"
        assert restored.graph_strategy == "naive"
        assert restored.ranking == "learning_to_rank"
