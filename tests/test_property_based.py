"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FactorScores, build_graph, dominates, strictly_dominates
from repro.core.graph import GRAPH_STRATEGIES
from repro.core.ranking import rank_topological, rank_weight_aware, weight_aware_scores
from repro.dataset import Column, ColumnType, entropy
from repro.indexes import FenwickDominanceIndex, RangeTree2D
from repro.language import AggregateOp, aggregate, bin_numeric
from repro.ml import dcg_at_k, kendall_tau, ndcg_at_k
from repro.core.correlation import pearson

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
scores_strategy = st.lists(
    st.builds(FactorScores, unit_floats, unit_floats, unit_floats),
    min_size=0,
    max_size=40,
)
# Quantised scores generate many ties and equal triples.
quantised = st.integers(min_value=0, max_value=3).map(lambda v: v / 3.0)
tied_scores_strategy = st.lists(
    st.builds(FactorScores, quantised, quantised, quantised),
    min_size=0,
    max_size=30,
)


class TestDominanceProperties:
    @given(scores_strategy)
    @settings(max_examples=60, deadline=None)
    def test_all_graph_strategies_agree(self, scores):
        reference = build_graph(scores, "naive").edge_set()
        for strategy in ("quicksort", "range_tree"):
            assert build_graph(scores, strategy).edge_set() == reference

    @given(tied_scores_strategy)
    @settings(max_examples=60, deadline=None)
    def test_strategies_agree_under_ties(self, scores):
        reference = build_graph(scores, "naive").edge_set()
        for strategy in ("quicksort", "range_tree"):
            assert build_graph(scores, strategy).edge_set() == reference

    @given(scores_strategy)
    @settings(max_examples=40, deadline=None)
    def test_strict_dominance_is_irreflexive_and_antisymmetric(self, scores):
        for u in scores:
            assert not strictly_dominates(u, u)
        for u in scores:
            for v in scores:
                assert not (strictly_dominates(u, v) and strictly_dominates(v, u))

    @given(
        st.builds(FactorScores, unit_floats, unit_floats, unit_floats),
        st.builds(FactorScores, unit_floats, unit_floats, unit_floats),
        st.builds(FactorScores, unit_floats, unit_floats, unit_floats),
    )
    @settings(max_examples=100, deadline=None)
    def test_dominance_is_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(scores_strategy)
    @settings(max_examples=40, deadline=None)
    def test_rankings_are_permutations_and_scores_nonnegative(self, scores):
        graph = build_graph(scores, "range_tree")
        assert sorted(rank_weight_aware(graph)) == list(range(len(scores)))
        assert sorted(rank_topological(graph)) == list(range(len(scores)))
        assert all(s >= 0 for s in weight_aware_scores(graph))

    @given(scores_strategy)
    @settings(max_examples=60, deadline=None)
    def test_edge_free_scores_equal_graph_scores(self, scores):
        """The O(n log^2 n) Fenwick computation must match the graph
        recursion exactly, on continuous inputs."""
        from repro.core.ranking import weight_aware_scores_from_factors

        graph = build_graph(scores, "naive")
        expected = weight_aware_scores(graph)
        actual = weight_aware_scores_from_factors(scores)
        assert np.allclose(expected, actual, atol=1e-9)

    @given(tied_scores_strategy)
    @settings(max_examples=60, deadline=None)
    def test_edge_free_scores_equal_graph_scores_under_ties(self, scores):
        from repro.core.ranking import weight_aware_scores_from_factors

        graph = build_graph(scores, "naive")
        expected = weight_aware_scores(graph)
        actual = weight_aware_scores_from_factors(scores)
        assert np.allclose(expected, actual, atol=1e-9)


points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1, allow_nan=False),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    ),
    min_size=0,
    max_size=60,
)


class TestIndexProperties:
    @given(points_strategy, unit_floats, unit_floats)
    @settings(max_examples=80, deadline=None)
    def test_range_tree_matches_brute_force(self, raw, qx, qy):
        points = [(x, y, i) for i, (x, y) in enumerate(raw)]
        tree = RangeTree2D(points)
        expected = sorted(i for x, y, i in points if x <= qx and y <= qy)
        assert sorted(tree.report(qx, qy)) == expected

    @given(points_strategy)
    @settings(max_examples=60, deadline=None)
    def test_fenwick_incremental_matches_brute_force(self, raw):
        if not raw:
            return
        xs = [x for x, _ in raw]
        index = FenwickDominanceIndex(xs)
        inserted = []
        for i, (x, y) in enumerate(raw):
            expected = sorted(
                j for (px, py, j) in inserted if px <= x and py <= y
            )
            assert sorted(index.report(x, y)) == expected
            index.insert(x, y, i)
            inserted.append((x, y, i))


class TestBinningProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_row_assigned_exactly_one_bucket(self, values, n):
        column = Column("v", ColumnType.NUMERICAL, values)
        distinct, assignment = bin_numeric(column, n)
        assert len(assignment) == len(values)
        assert len(distinct) <= n
        assert all(0 <= a < len(distinct) for a in assignment)
        # Buckets are emitted sorted.
        keys = [b.sort_key for b in distinct]
        assert keys == sorted(keys)

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_aggregation_conservation(self, values, n):
        """SUM over buckets equals the column total; CNT sums to n rows."""
        column = Column("v", ColumnType.NUMERICAL, values)
        distinct, assignment = bin_numeric(column, n)
        sums = aggregate(AggregateOp.SUM, assignment, len(distinct), column)
        counts = aggregate(AggregateOp.CNT, assignment, len(distinct))
        assert float(np.sum(sums)) == np.sum(np.asarray(values)) or math.isclose(
            float(np.sum(sums)), float(np.sum(np.asarray(values))), rel_tol=1e-9,
            abs_tol=1e-6,
        )
        assert int(np.sum(counts)) == len(values)


class TestMetricProperties:
    @given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_ndcg_bounded(self, gains):
        value = ndcg_at_k(gains)
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_ideal_order_is_optimal(self, gains):
        ideal = sorted(gains, reverse=True)
        assert ndcg_at_k(ideal) >= ndcg_at_k(gains) - 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=5, allow_nan=False), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_dcg_monotone_in_gains(self, gains):
        bumped = [g + 1.0 for g in gains]
        assert dcg_at_k(bumped) >= dcg_at_k(gains)

    @given(st.permutations(list(range(6))))
    @settings(max_examples=50, deadline=None)
    def test_kendall_tau_symmetry(self, perm):
        base = list(range(6))
        assert kendall_tau(base, list(perm)) == kendall_tau(list(perm), base)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pearson_bounded_and_symmetric(self, xs):
        ys = xs[::-1]
        value = pearson(xs, ys)
        assert -1.0 <= value <= 1.0
        assert pearson(ys, xs) == value

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_entropy_bounds(self, counts):
        value = entropy(counts)
        positive = [c for c in counts if c > 0]
        assert value >= 0.0
        if positive:
            assert value <= math.log(len(positive)) + 1e-9
