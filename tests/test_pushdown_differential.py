"""Differential tests: sqlite GROUP BY pushdown vs the in-memory kernels.

Every (transform, aggregate) signature the pushdown claims to serve
must reproduce the kernel's labels, sort keys, and bucket values
byte-for-byte, and the aggregated y within float tolerance — over
mixed storage classes, NA tokens, NULLs, constants, and empty
relations.  Signatures outside the contract must fall back with the
documented reason.
"""

import sqlite3
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import ColumnType
from repro.dataset.sources import SqliteSource, from_source
from repro.language import bin_numeric, bin_temporal, group_categorical
from repro.language.ast import (
    AggregateOp,
    BinByGranularity,
    BinByUDF,
    BinIntoBuckets,
    BinGranularity,
    GroupBy,
)


def _make_db(directory, rows, column_sql, table="rel"):
    path = Path(directory) / "data.db"
    conn = sqlite3.connect(str(path))
    conn.execute(f"CREATE TABLE {table} ({column_sql})")
    width = column_sql.count(",") + 1
    holes = ", ".join("?" * width)
    conn.executemany(f"INSERT INTO {table} VALUES ({holes})", rows)
    conn.commit()
    conn.close()
    return path


def _load(path, table="rel", query=None, pushdown=True):
    source = SqliteSource(path, table=table if query is None else None,
                          query=query)
    return from_source(source, materialize=True, pushdown=pushdown)


def _kernel_parts(table, transform, op, y):
    """What the in-memory kernels produce for one chart signature."""
    column = table.column(transform.column)
    if isinstance(transform, GroupBy):
        small = group_categorical(column)
    elif isinstance(transform, BinByGranularity):
        small = bin_temporal(column, transform.granularity)
    else:
        small = bin_numeric(column, transform.n)
    counts = np.bincount(small.assignment, minlength=small.num_buckets)
    if op is AggregateOp.CNT:
        y_values = counts.astype(np.float64)
    else:
        weights = table.column(y).values.astype(np.float64)
        sums = np.bincount(
            small.assignment, weights=weights, minlength=small.num_buckets
        )
        if op is AggregateOp.SUM:
            y_values = sums
        else:
            with np.errstate(invalid="ignore", divide="ignore"):
                y_values = np.where(counts > 0, sums / counts, 0.0)
    return small, y_values


def _assert_served_matches(table, transform, op, y):
    provider = table.pushdown_provider
    parts = provider.serve(transform, op, y if op is not AggregateOp.CNT else None)
    assert parts is not None, provider.stats()
    small, y_values = _kernel_parts(table, transform, op, y)
    assert parts["labels"] == small.labels
    assert parts["sort_keys"] == tuple(
        np.asarray(small.sort_keys, dtype=np.float64).tolist()
    )
    assert parts["values"] == tuple(
        np.asarray(small.values, dtype=np.float64).tolist()
    )
    np.testing.assert_allclose(
        np.asarray(parts["y_values"]), y_values, rtol=1e-9, atol=1e-9
    )
    assert parts["source_rows"] == table.num_rows


# Raw sqlite cells across storage classes, NULLs, and NA tokens.
cat_cell = st.one_of(
    st.sampled_from(["red", "green", "blue", "NA", "null", ""]),
    st.none(),
    st.integers(min_value=0, max_value=3),
)
num_cell = st.one_of(
    st.none(),
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    st.sampled_from(["NA", "n/a"]),
)
tem_cell = st.sampled_from(
    ["2021-01-05", "2021-02-11", "2021-02-28", "2022-07-01", None, "NA"]
)
y_cell = st.one_of(
    st.none(),
    st.integers(min_value=-100, max_value=100),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
)

row_lists = st.lists(
    st.tuples(cat_cell, num_cell, tem_cell, y_cell), min_size=1, max_size=80
)

SIGNATURES = [
    (GroupBy("c"), AggregateOp.CNT),
    (GroupBy("c"), AggregateOp.SUM),
    (GroupBy("c"), AggregateOp.AVG),
    (GroupBy("t"), AggregateOp.CNT),
    (BinIntoBuckets("n", 7), AggregateOp.CNT),
    (BinIntoBuckets("n", 7), AggregateOp.SUM),
    (BinByGranularity("t", BinGranularity.MONTH), AggregateOp.CNT),
    (BinByGranularity("t", BinGranularity.MONTH), AggregateOp.AVG),
    (BinByGranularity("t", BinGranularity.YEAR), AggregateOp.SUM),
]


class TestDifferential:
    @given(row_lists)
    @settings(max_examples=30, deadline=None)
    def test_mixed_storage_matches_kernels(self, rows):
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "c, n, t, y REAL")
            table = _load(path)
            # The enumerator only emits type-valid signatures with a
            # numeric y; mirror that contract here — inference over the
            # generated cells may flip any column's type.
            types = {col.name: col.ctype for col in table.columns}
            for transform, op in SIGNATURES:
                x_type = types[transform.column]
                if isinstance(transform, GroupBy):
                    valid = x_type in (
                        ColumnType.CATEGORICAL, ColumnType.TEMPORAL
                    )
                elif isinstance(transform, BinByGranularity):
                    valid = x_type is ColumnType.TEMPORAL
                else:
                    valid = x_type is ColumnType.NUMERICAL
                if op is not AggregateOp.CNT:
                    valid = valid and types["y"] is ColumnType.NUMERICAL
                if not valid:
                    continue
                provider = table.pushdown_provider
                before = dict(provider.fallbacks)
                parts = provider.serve(
                    transform, op,
                    "y" if op is not AggregateOp.CNT else None,
                )
                if parts is None:
                    # Only the documented reasons may reject a serve.
                    grown = {
                        reason
                        for reason, count in provider.fallbacks.items()
                        if count > before.get(reason, 0)
                    }
                    assert grown <= {"y_storage", "empty"}
                    continue
                _assert_served_matches(
                    table, transform, op,
                    "y" if op is not AggregateOp.CNT else None,
                )

    @given(
        st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_clean_numeric_index_pushdown(self, values, n):
        rows = [(v, float(v) * 0.5) for v in values]
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "n REAL, y REAL")
            table = _load(path)
            for op in (AggregateOp.CNT, AggregateOp.SUM, AggregateOp.AVG):
                _assert_served_matches(
                    table, BinIntoBuckets("n", n), op,
                    "y" if op is not AggregateOp.CNT else None,
                )
            # A clean REAL column must use index pushdown, never the
            # distinct path: no cardinality probe recorded.
            assert "cardinality" not in table.pushdown_provider.fallbacks


class TestEdgeRelations:
    def test_empty_relation_falls_back(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, [], "c, n REAL")
            table = _load(path)
            provider = table.pushdown_provider
            assert provider.serve(GroupBy("c"), AggregateOp.CNT, None) is None
            assert provider.fallbacks.get("empty") == 1

    def test_constant_numeric_column(self):
        rows = [(3.5, i) for i in range(20)]
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "n REAL, y REAL")
            table = _load(path)
            for op in (AggregateOp.CNT, AggregateOp.SUM):
                _assert_served_matches(
                    table, BinIntoBuckets("n", 5), op,
                    "y" if op is not AggregateOp.CNT else None,
                )

    def test_all_null_column_infers_categorical(self):
        # An all-NULL column infers CATEGORICAL, so BIN INTO is the
        # enumerator's mistake, not the pushdown's: type_mismatch.
        rows = [(None, "a") for _ in range(10)]
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "n REAL, c")
            table = _load(path)
            assert table.column("n").ctype is ColumnType.CATEGORICAL
            provider = table.pushdown_provider
            assert (
                provider.serve(BinIntoBuckets("n", 4), AggregateOp.CNT, None)
                is None
            )
            assert provider.fallbacks.get("type_mismatch") == 1
            # GROUP BY over the single empty-token bucket still serves.
            _assert_served_matches(
                table, GroupBy("n"), AggregateOp.CNT, None
            )

    def test_text_stored_numeric_uses_distinct_path(self):
        # Text storage fails the clean-numeric probe, so BIN INTO must
        # take the distinct path and still match the kernel exactly.
        rows = [(str(i % 9),) for i in range(40)]
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "n TEXT")
            table = _load(path)
            _assert_served_matches(
                table, BinIntoBuckets("n", 3), AggregateOp.CNT, None
            )
            assert table.pushdown_provider._is_clean_numeric("n") is False

    def test_infinity_storage_is_unclean(self):
        # 9e999 parses to inf in SQL but _parse_number coerces it to
        # 0.0 in memory; the clean probe must reject the column.
        rows = [(9e999,)] + [(float(i),) for i in range(49)]
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "n REAL")
            table = _load(path)
            assert table.column("n").ctype is ColumnType.NUMERICAL
            _assert_served_matches(
                table, BinIntoBuckets("n", 2), AggregateOp.CNT, None
            )
            assert table.pushdown_provider._is_clean_numeric("n") is False

    def test_cross_storage_distincts_merge(self):
        # Integer 5 and text '5' are distinct to sqlite's GROUP BY but
        # coerce to one categorical token; counts must merge.
        rows = [(5,), ("5",), ("5",), ("x",)]
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "c")
            table = _load(path)
            _assert_served_matches(
                table, GroupBy("c"), AggregateOp.CNT, None
            )

    def test_query_relation_group_by_falls_back_on_rowid(self):
        rows = [("a", 1), ("b", 2), ("a", 3)]
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "c, n REAL")
            table = _load(path, query="SELECT c, n FROM rel")
            provider = table.pushdown_provider
            # First-appearance ordering needs rowid; a subquery has none.
            assert provider.serve(GroupBy("c"), AggregateOp.CNT, None) is None
            assert provider.fallbacks.get("rowid") == 1
            # BIN INTO doesn't need rowid and still pushes down.
            _assert_served_matches(
                table, BinIntoBuckets("n", 2), AggregateOp.CNT, None
            )

    def test_udf_transform_falls_back(self):
        rows = [(1.0,)] * 3
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "n REAL")
            table = _load(path)
            provider = table.pushdown_provider
            transform = BinByUDF("n", "weekend", lambda v: 0)
            assert provider.serve(transform, AggregateOp.CNT, None) is None
            assert provider.fallbacks.get("udf") == 1

    def test_unknown_column_falls_back(self):
        rows = [(1.0,)] * 3
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "n REAL")
            table = _load(path)
            provider = table.pushdown_provider
            assert (
                provider.serve(GroupBy("missing"), AggregateOp.CNT, None)
                is None
            )
            assert provider.fallbacks.get("unknown_column") == 1

    def test_cardinality_limit_falls_back(self):
        rows = [(f"v{i}",) for i in range(30)]
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "c")
            table = _load(path)
            provider = table.pushdown_provider
            provider.distinct_limit = 10
            assert provider.serve(GroupBy("c"), AggregateOp.CNT, None) is None
            assert provider.fallbacks.get("cardinality") == 1

    def test_serve_memoises_per_chart(self):
        rows = [("a",), ("b",)]
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "c")
            table = _load(path)
            provider = table.pushdown_provider
            first = provider.serve(GroupBy("c"), AggregateOp.CNT, None)
            second = provider.serve(GroupBy("c"), AggregateOp.CNT, None)
            assert first == second
            assert provider.served == 2
            assert len(provider._charts) == 1

    def test_no_pushdown_flag_detaches_provider(self):
        rows = [("a", 1.0)]
        with tempfile.TemporaryDirectory() as tmp:
            path = _make_db(tmp, rows, "c, n REAL")
            table = _load(path, pushdown=False)
            assert table.pushdown_provider is None
            assert table.cache_scope is None
