"""Unit tests for Vega-Lite and ASCII rendering."""

import json

import pytest

from repro.core import make_node
from repro.language import AggregateOp, ChartType, GroupBy, VisQuery
from repro.render import render_ascii, to_vega_lite, to_vega_lite_json


def _node(table, chart=ChartType.BAR):
    return make_node(
        table,
        VisQuery(chart=chart, x="carrier", y="passengers",
                 transform=GroupBy("carrier"), aggregate=AggregateOp.SUM),
    )


def _scatter(table):
    return make_node(
        table,
        VisQuery(chart=ChartType.SCATTER, x="departure_delay", y="arrival_delay"),
    )


class TestVegaLite:
    def test_bar_spec_structure(self, flights_table):
        spec = to_vega_lite(_node(flights_table))
        assert spec["mark"] == "bar"
        assert spec["encoding"]["x"]["field"] == "x"
        assert spec["encoding"]["y"]["title"] == "SUM(passengers)"
        assert len(spec["data"]["values"]) == 4

    def test_pie_uses_theta_encoding(self, flights_table):
        spec = to_vega_lite(_node(flights_table, ChartType.PIE))
        assert spec["mark"] == "arc"
        assert "theta" in spec["encoding"]
        assert "color" in spec["encoding"]

    def test_scatter_quantitative_axes(self, flights_table):
        spec = to_vega_lite(_scatter(flights_table))
        assert spec["mark"] == "point"
        assert spec["encoding"]["x"]["type"] == "quantitative"

    def test_discrete_axis_keeps_order(self, flights_table):
        spec = to_vega_lite(_node(flights_table, ChartType.LINE))
        assert spec["encoding"]["x"]["type"] == "nominal"
        assert spec["encoding"]["x"]["sort"] is None

    def test_json_serialisable(self, flights_table):
        text = to_vega_lite_json(_node(flights_table))
        parsed = json.loads(text)
        assert parsed["$schema"].startswith("https://vega.github.io")

    def test_custom_title(self, flights_table):
        spec = to_vega_lite(_node(flights_table), title="My Chart")
        assert spec["title"] == "My Chart"


class TestAscii:
    def test_bar_chart_renders_labels_and_bars(self, flights_table):
        text = render_ascii(_node(flights_table))
        assert "UA" in text
        assert "#" in text

    def test_pie_shows_total(self, flights_table):
        text = render_ascii(_node(flights_table, ChartType.PIE))
        assert "pie: shares of total" in text

    def test_scatter_grid(self, flights_table):
        text = render_ascii(_scatter(flights_table))
        assert "*" in text
        assert "y: [" in text

    def test_many_bars_downsampled(self):
        from repro.dataset import Table

        table = Table.from_dict(
            "wide", {"c": [f"k{i}" for i in range(60)], "v": list(range(60))}
        )
        node = make_node(
            table,
            VisQuery(chart=ChartType.BAR, x="c", y="v",
                     transform=GroupBy("c"), aggregate=AggregateOp.SUM),
        )
        text = render_ascii(node)
        assert "(+36)" in text

    def test_header_is_description(self, flights_table):
        node = _node(flights_table)
        assert render_ascii(node).splitlines()[0] == node.describe()
