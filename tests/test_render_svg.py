"""Tests for the standalone SVG renderer."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.core import execute_multi_series, make_node
from repro.language import (
    AggregateOp,
    BinByGranularity,
    BinGranularity,
    ChartType,
    GroupBy,
    VisQuery,
)
from repro.render import multi_to_svg, to_svg


def _node(table, chart):
    return make_node(
        table,
        VisQuery(chart=chart, x="carrier", y="passengers",
                 transform=GroupBy("carrier"), aggregate=AggregateOp.SUM),
    )


def _parse(svg_text):
    # Valid XML is the baseline requirement for an SVG document.
    return ET.fromstring(svg_text)


class TestSingleCharts:
    def test_bar_chart_has_rects(self, flights_table):
        svg = to_svg(_node(flights_table, ChartType.BAR))
        root = _parse(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        assert len(rects) >= 4  # one bar per carrier

    def test_line_chart_has_polyline(self, flights_table):
        node = make_node(
            flights_table,
            VisQuery(chart=ChartType.LINE, x="scheduled", y="departure_delay",
                     transform=BinByGranularity("scheduled", BinGranularity.HOUR),
                     aggregate=AggregateOp.AVG),
        )
        svg = to_svg(node)
        assert "<polyline" in svg
        _parse(svg)

    def test_scatter_has_circles_only(self, flights_table):
        node = make_node(
            flights_table,
            VisQuery(chart=ChartType.SCATTER, x="departure_delay", y="arrival_delay"),
        )
        svg = to_svg(node)
        assert "<polyline" not in svg
        assert svg.count("<circle") >= flights_table.num_rows
        _parse(svg)

    def test_pie_chart_has_slices_and_legend(self, flights_table):
        svg = to_svg(_node(flights_table, ChartType.PIE))
        assert svg.count("<path") >= 3  # >= 3 visible slices
        assert "%" in svg  # legend percentages
        _parse(svg)

    def test_title_escaped(self, flights_table):
        svg = to_svg(_node(flights_table, ChartType.BAR), title='a<b & "c"')
        assert "&lt;b" in svg and "&amp;" in svg
        _parse(svg)

    def test_negative_values_render(self):
        from repro.dataset import Table

        table = Table.from_dict(
            "neg", {"k": ["a", "b", "c"], "v": [-5.0, 3.0, -1.0]}
        )
        node = make_node(
            table,
            VisQuery(chart=ChartType.BAR, x="k", y="v",
                     transform=GroupBy("k"), aggregate=AggregateOp.SUM),
        )
        _parse(to_svg(node))

    def test_axis_labels_present(self, flights_table):
        svg = to_svg(_node(flights_table, ChartType.BAR))
        assert "carrier" in svg
        assert "SUM(passengers)" in svg


class TestMultiSeries:
    def test_multi_line_one_polyline_per_series(self, flights_table):
        data = execute_multi_series(
            flights_table, "scheduled",
            ["departure_delay", "arrival_delay"],
            BinByGranularity("scheduled", BinGranularity.HOUR),
            AggregateOp.AVG, ChartType.LINE,
        )
        svg = multi_to_svg(data)
        assert svg.count("<polyline") == 2
        assert "departure_dela" in svg  # legend (possibly truncated)
        _parse(svg)

    def test_distinct_series_colors(self, flights_table):
        data = execute_multi_series(
            flights_table, "scheduled",
            ["departure_delay", "arrival_delay", "passengers"],
            BinByGranularity("scheduled", BinGranularity.MONTH),
            AggregateOp.AVG, ChartType.LINE,
        )
        svg = multi_to_svg(data)
        colors = set(re.findall(r'stroke="(#[0-9A-Fa-f]{6})"', svg))
        assert len(colors) >= 3  # axes color + >=3 series? at least 3 strokes
